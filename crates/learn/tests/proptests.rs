//! Property-based tests for the hyperdimensional learner and
//! encoders.

use hdface_hdc::{BitVector, HdcRng, SeedableRng};
use hdface_learn::{FeatureEncoder, HdClassifier, LevelIdEncoder, ProjectionEncoder, TrainConfig};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn predictions_are_valid_class_indices(
        seed in any::<u64>(),
        k in 2usize..6,
    ) {
        let mut rng = HdcRng::seed_from_u64(seed);
        let samples: Vec<(BitVector, usize)> = (0..3 * k)
            .map(|i| (BitVector::random(512, &mut rng), i % k))
            .collect();
        let mut clf = HdClassifier::new(k, 512);
        clf.fit(&samples, &TrainConfig::default(), &mut rng).unwrap();
        for (s, _) in &samples {
            prop_assert!(clf.predict(s).unwrap() < k);
        }
    }

    #[test]
    fn training_memorizes_well_separated_prototypes(seed in any::<u64>()) {
        let mut rng = HdcRng::seed_from_u64(seed);
        let protos: Vec<BitVector> =
            (0..3).map(|_| BitVector::random(4096, &mut rng)).collect();
        let samples: Vec<(BitVector, usize)> = (0..30)
            .map(|i| {
                let l = i % 3;
                (protos[l].with_bit_errors(0.15, &mut rng).unwrap(), l)
            })
            .collect();
        let mut clf = HdClassifier::new(3, 4096);
        clf.fit(&samples, &TrainConfig::default(), &mut rng).unwrap();
        prop_assert!(clf.accuracy(&samples).unwrap() > 0.9);
    }

    #[test]
    fn binary_export_preserves_most_predictions(seed in any::<u64>()) {
        let mut rng = HdcRng::seed_from_u64(seed);
        let protos: Vec<BitVector> =
            (0..2).map(|_| BitVector::random(2048, &mut rng)).collect();
        let samples: Vec<(BitVector, usize)> = (0..20)
            .map(|i| {
                let l = i % 2;
                (protos[l].with_bit_errors(0.2, &mut rng).unwrap(), l)
            })
            .collect();
        let mut clf = HdClassifier::new(2, 2048);
        clf.fit(&samples, &TrainConfig::default(), &mut rng).unwrap();
        let binary = clf.to_binary(&mut rng);
        let mut agree = 0;
        for (s, _) in &samples {
            if clf.predict(s).unwrap() == binary.predict(s).unwrap() {
                agree += 1;
            }
        }
        prop_assert!(agree >= 17, "float/binary agreement {agree}/20");
    }

    #[test]
    fn encoders_are_pure_functions(
        x in prop::collection::vec(0.0f64..1.0, 8),
        seed in any::<u64>(),
    ) {
        let lid = LevelIdEncoder::new(8, 1024, 8, 0.0, 1.0, seed);
        let proj = ProjectionEncoder::new(8, 1024, seed);
        prop_assert_eq!(lid.encode(&x).unwrap(), lid.encode(&x).unwrap());
        prop_assert_eq!(proj.encode(&x).unwrap(), proj.encode(&x).unwrap());
    }

    #[test]
    fn level_encoder_similarity_decreases_with_distance(
        base in 0.2f64..0.4,
        seed in any::<u64>(),
    ) {
        let lid = LevelIdEncoder::new(4, 4096, 16, 0.0, 1.0, seed);
        let x = vec![base; 4];
        let near: Vec<f64> = x.iter().map(|v| v + 0.08).collect();
        let far: Vec<f64> = x.iter().map(|v| v + 0.55).collect();
        let ex = lid.encode(&x).unwrap();
        let s_near = ex.similarity(&lid.encode(&near).unwrap()).unwrap();
        let s_far = ex.similarity(&lid.encode(&far).unwrap()).unwrap();
        prop_assert!(s_near > s_far, "near {s_near} vs far {s_far}");
    }

    #[test]
    fn update_learning_rate_shrinks_with_familiarity(seed in any::<u64>()) {
        // After repeatedly seeing one vector, its class similarity
        // approaches 1 and further adaptive updates have little
        // effect (the anti-saturation property).
        let mut rng = HdcRng::seed_from_u64(seed);
        let v = BitVector::random(1024, &mut rng);
        let mut clf = HdClassifier::new(1, 1024);
        for _ in 0..5 {
            clf.update(&v, 0, true).unwrap();
        }
        let before = clf.class(0).norm();
        clf.update(&v, 0, true).unwrap();
        let after = clf.class(0).norm();
        prop_assert!(after - before < 0.2 * before + 1e-9,
            "familiar sample moved the class from {before} to {after}");
    }
}
