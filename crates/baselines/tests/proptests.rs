//! Property-based tests for the baseline learners.

use hdface_baselines::{LinearSvm, Mlp, MlpConfig, QuantizedMlp, SvmConfig, WeightPrecision};
use proptest::prelude::*;
use rand::{rngs::StdRng, SeedableRng};

fn small_mlp(seed: u64) -> Mlp {
    Mlp::new(&MlpConfig {
        input: 6,
        hidden1: 10,
        hidden2: 8,
        output: 3,
        lr: 0.05,
        momentum: 0.9,
        epochs: 5,
        batch_size: 4,
        seed,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn forward_outputs_a_probability_simplex(
        x in prop::collection::vec(-2.0f64..2.0, 6),
        seed in any::<u64>(),
    ) {
        let mlp = small_mlp(seed);
        let p = mlp.forward(&x).unwrap();
        prop_assert_eq!(p.len(), 3);
        prop_assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        prop_assert!(p.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn prediction_is_argmax_of_forward(
        x in prop::collection::vec(-2.0f64..2.0, 6),
        seed in any::<u64>(),
    ) {
        let mlp = small_mlp(seed);
        let p = mlp.forward(&x).unwrap();
        let pred = mlp.predict(&x).unwrap();
        for v in &p {
            prop_assert!(p[pred] >= *v);
        }
    }

    #[test]
    fn quantization_error_is_bounded_per_weight(seed in any::<u64>()) {
        // 16-bit quantization must reproduce the float forward pass
        // closely on any input.
        let mlp = small_mlp(seed);
        let q = QuantizedMlp::from_mlp(&mlp, WeightPrecision::Bits16);
        let x = vec![0.3; 6];
        let fp = mlp.forward(&x).unwrap();
        let qp = q.forward(&x).unwrap();
        // Compare argmax (scores are pre-softmax in the quantized
        // path, so compare decisions).
        let fa = fp.iter().enumerate().max_by(|a, b| a.1.total_cmp(b.1)).unwrap().0;
        let qa = qp.iter().enumerate().max_by(|a, b| a.1.total_cmp(b.1)).unwrap().0;
        prop_assert_eq!(fa, qa);
    }

    #[test]
    fn zero_rate_bit_errors_change_nothing(seed in any::<u64>(), prec in prop::sample::select(
        vec![WeightPrecision::Bits16, WeightPrecision::Bits8, WeightPrecision::Bits4]
    )) {
        let mlp = small_mlp(seed);
        let q = QuantizedMlp::from_mlp(&mlp, prec);
        let mut rng = StdRng::seed_from_u64(seed);
        let same = q.with_bit_errors(0.0, &mut rng);
        let x = vec![0.5; 6];
        prop_assert_eq!(q.forward(&x).unwrap(), same.forward(&x).unwrap());
    }

    #[test]
    fn svm_margins_are_linear_in_input_scale(
        x in prop::collection::vec(0.0f64..1.0, 6),
        k in 0.1f64..4.0,
    ) {
        // An untrained-then-fitted SVM is linear: margins(k·x) − b
        // scales by k. Verify on a trained machine.
        let mut svm = LinearSvm::new(&SvmConfig::new(6, 2));
        let data = vec![
            (vec![0.9, 0.9, 0.1, 0.1, 0.5, 0.5], 0),
            (vec![0.1, 0.1, 0.9, 0.9, 0.5, 0.5], 1),
        ];
        svm.fit(&data).unwrap();
        let m1 = svm.margins(&x).unwrap();
        let scaled: Vec<f64> = x.iter().map(|v| v * k).collect();
        let m2 = svm.margins(&scaled).unwrap();
        let zero = svm.margins(&[0.0; 6]).unwrap();
        for i in 0..2 {
            let lin = (m1[i] - zero[i]) * k + zero[i];
            prop_assert!((m2[i] - lin).abs() < 1e-9);
        }
    }

    #[test]
    fn accuracy_is_a_fraction(seed in any::<u64>()) {
        let mlp = small_mlp(seed);
        let data: Vec<(Vec<f64>, usize)> =
            (0..7).map(|i| (vec![i as f64 / 7.0; 6], i % 3)).collect();
        let acc = mlp.accuracy(&data).unwrap();
        prop_assert!((0.0..=1.0).contains(&acc));
    }
}
