//! One-vs-rest linear SVM (Pegasos-style hinge-loss SGD).

use std::fmt;

use rand::{rngs::StdRng, RngExt, SeedableRng};

use crate::error::BaselineError;
use crate::mlp::argmax;

/// Hyperparameters of the SVM baseline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SvmConfig {
    /// Input feature length.
    pub input: usize,
    /// Number of classes (one binary machine per class).
    pub classes: usize,
    /// L2 regularization strength λ.
    pub lambda: f64,
    /// Training epochs.
    pub epochs: usize,
    /// Shuffling seed.
    pub seed: u64,
}

impl SvmConfig {
    /// Defaults that work well on normalized HOG features.
    #[must_use]
    pub fn new(input: usize, classes: usize) -> Self {
        SvmConfig {
            input,
            classes,
            lambda: 1e-4,
            epochs: 40,
            seed: 0,
        }
    }
}

/// One-vs-rest linear SVM trained with the Pegasos schedule
/// (step size `1/(λ·t)`).
pub struct LinearSvm {
    config: SvmConfig,
    /// Per-class weight vectors, row-major `classes × input`.
    weights: Vec<f64>,
    biases: Vec<f64>,
    rng: StdRng,
    step: usize,
}

impl LinearSvm {
    /// Initializes a zero-weight machine.
    ///
    /// # Panics
    ///
    /// Panics if `input` or `classes` is zero.
    #[must_use]
    pub fn new(config: &SvmConfig) -> Self {
        assert!(
            config.input > 0 && config.classes > 0,
            "sizes must be positive"
        );
        LinearSvm {
            config: *config,
            weights: vec![0.0; config.input * config.classes],
            biases: vec![0.0; config.classes],
            rng: StdRng::seed_from_u64(config.seed),
            step: 1,
        }
    }

    /// The configuration the machine was built with.
    #[must_use]
    pub fn config(&self) -> &SvmConfig {
        &self.config
    }

    /// Per-class decision margins for one input.
    ///
    /// # Errors
    ///
    /// Returns [`BaselineError::InputLengthMismatch`] for wrong input
    /// sizes.
    pub fn margins(&self, x: &[f64]) -> Result<Vec<f64>, BaselineError> {
        if x.len() != self.config.input {
            return Err(BaselineError::InputLengthMismatch {
                expected: self.config.input,
                actual: x.len(),
            });
        }
        Ok((0..self.config.classes)
            .map(|c| {
                let row = &self.weights[c * self.config.input..(c + 1) * self.config.input];
                row.iter().zip(x).map(|(w, xi)| w * xi).sum::<f64>() + self.biases[c]
            })
            .collect())
    }

    /// Predicted class (largest margin).
    ///
    /// # Errors
    ///
    /// Returns [`BaselineError::InputLengthMismatch`] for wrong input
    /// sizes.
    pub fn predict(&self, x: &[f64]) -> Result<usize, BaselineError> {
        Ok(argmax(&self.margins(x)?))
    }

    /// Fraction of correctly classified samples (`0.0` when empty).
    ///
    /// # Errors
    ///
    /// Propagates validation errors.
    pub fn accuracy(&self, data: &[(Vec<f64>, usize)]) -> Result<f64, BaselineError> {
        if data.is_empty() {
            return Ok(0.0);
        }
        let mut correct = 0;
        for (x, y) in data {
            if self.predict(x)? == *y {
                correct += 1;
            }
        }
        Ok(correct as f64 / data.len() as f64)
    }

    /// Trains with the Pegasos schedule for the configured epochs.
    ///
    /// # Errors
    ///
    /// Returns [`BaselineError::EmptyTrainingSet`] for no samples,
    /// plus the usual shape/label validation.
    pub fn fit(&mut self, data: &[(Vec<f64>, usize)]) -> Result<(), BaselineError> {
        if data.is_empty() {
            return Err(BaselineError::EmptyTrainingSet);
        }
        for (x, y) in data {
            if x.len() != self.config.input {
                return Err(BaselineError::InputLengthMismatch {
                    expected: self.config.input,
                    actual: x.len(),
                });
            }
            if *y >= self.config.classes {
                return Err(BaselineError::LabelOutOfRange {
                    label: *y,
                    num_classes: self.config.classes,
                });
            }
        }
        let mut order: Vec<usize> = (0..data.len()).collect();
        for _ in 0..self.config.epochs {
            for i in (1..order.len()).rev() {
                let j = self.rng.random_range(0..=i);
                order.swap(i, j);
            }
            for &i in &order {
                let (x, y) = &data[i];
                self.pegasos_step(x, *y);
            }
        }
        Ok(())
    }

    /// One Pegasos update: every class machine sees the sample with
    /// target +1 (its class) or −1 (rest).
    fn pegasos_step(&mut self, x: &[f64], label: usize) {
        let eta = 1.0 / (self.config.lambda * self.step as f64);
        let n = self.config.input;
        for c in 0..self.config.classes {
            let target = if c == label { 1.0 } else { -1.0 };
            let row = &self.weights[c * n..(c + 1) * n];
            let margin: f64 = row.iter().zip(x).map(|(w, xi)| w * xi).sum::<f64>() + self.biases[c];
            let shrink = 1.0 - eta * self.config.lambda;
            let row = &mut self.weights[c * n..(c + 1) * n];
            for w in row.iter_mut() {
                *w *= shrink;
            }
            if target * margin < 1.0 {
                let row = &mut self.weights[c * n..(c + 1) * n];
                for (w, xi) in row.iter_mut().zip(x) {
                    *w += eta * target * xi;
                }
                self.biases[c] += eta * target * 0.1;
            }
        }
        self.step += 1;
    }
}

impl fmt::Debug for LinearSvm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "LinearSvm({} classes × {} features, λ={})",
            self.config.classes, self.config.input, self.config.lambda
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs(seed: u64, n_per: usize, k: usize) -> Vec<(Vec<f64>, usize)> {
        // Class c's center is 0.8·e_c (orthogonal directions), so each
        // one-vs-rest machine has a clean separating hyperplane.
        let mut rng = StdRng::seed_from_u64(seed);
        let mut data = Vec::new();
        for c in 0..k {
            for _ in 0..n_per {
                let x: Vec<f64> = (0..6)
                    .map(|d| {
                        let center = if d == c { 0.8 } else { 0.1 };
                        center + rng.random_range(-0.12..0.12)
                    })
                    .collect();
                data.push((x, c));
            }
        }
        data
    }

    #[test]
    fn learns_linearly_separable_blobs() {
        let mut svm = LinearSvm::new(&SvmConfig::new(6, 3));
        let train = blobs(1, 30, 3);
        let test = blobs(2, 30, 3);
        svm.fit(&train).unwrap();
        let acc = svm.accuracy(&test).unwrap();
        assert!(acc > 0.9, "accuracy {acc}");
    }

    #[test]
    fn margins_have_one_entry_per_class() {
        let svm = LinearSvm::new(&SvmConfig::new(6, 4));
        let m = svm.margins(&[0.0; 6]).unwrap();
        assert_eq!(m.len(), 4);
    }

    #[test]
    fn rejects_bad_inputs() {
        let mut svm = LinearSvm::new(&SvmConfig::new(6, 2));
        assert!(matches!(svm.fit(&[]), Err(BaselineError::EmptyTrainingSet)));
        assert!(svm.margins(&[0.0; 5]).is_err());
        assert!(matches!(
            svm.fit(&[(vec![0.0; 6], 9)]),
            Err(BaselineError::LabelOutOfRange { .. })
        ));
        assert_eq!(svm.accuracy(&[]).unwrap(), 0.0);
    }

    #[test]
    fn deterministic_per_seed() {
        let train = blobs(3, 20, 2);
        let mut a = LinearSvm::new(&SvmConfig::new(6, 2));
        let mut b = LinearSvm::new(&SvmConfig::new(6, 2));
        a.fit(&train).unwrap();
        b.fit(&train).unwrap();
        let x = vec![0.4; 6];
        assert_eq!(a.margins(&x).unwrap(), b.margins(&x).unwrap());
    }

    #[test]
    fn debug_formats() {
        let svm = LinearSvm::new(&SvmConfig::new(6, 2));
        assert!(format!("{svm:?}").contains("2 classes"));
        assert_eq!(svm.config().classes, 2);
    }
}
