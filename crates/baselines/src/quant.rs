//! Fixed-point weight quantization and bit-error injection for the
//! DNN robustness study (Table 2).

use std::fmt;

use rand::{Rng, RngExt};

use crate::error::BaselineError;
use crate::mlp::{argmax, Mlp};

/// Model weight precision: the paper evaluates 16-, 8- and 4-bit DNN
/// models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WeightPrecision {
    /// 16-bit fixed point.
    Bits16,
    /// 8-bit fixed point.
    Bits8,
    /// 4-bit fixed point.
    Bits4,
}

impl WeightPrecision {
    /// All precisions studied by Table 2, in paper order.
    pub const ALL: [WeightPrecision; 3] = [
        WeightPrecision::Bits16,
        WeightPrecision::Bits8,
        WeightPrecision::Bits4,
    ];

    /// Number of bits per weight.
    #[must_use]
    pub fn bits(self) -> u32 {
        match self {
            WeightPrecision::Bits16 => 16,
            WeightPrecision::Bits8 => 8,
            WeightPrecision::Bits4 => 4,
        }
    }

    /// Label used in experiment output.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            WeightPrecision::Bits16 => "16-bit",
            WeightPrecision::Bits8 => "8-bit",
            WeightPrecision::Bits4 => "4-bit",
        }
    }
}

/// One quantized layer: signed fixed-point codes plus a scale such
/// that `weight ≈ code · scale`.
#[derive(Debug, Clone)]
struct QuantLayer {
    codes: Vec<i32>,
    bias_codes: Vec<i32>,
    scale: f64,
    bias_scale: f64,
    inputs: usize,
    outputs: usize,
}

impl QuantLayer {
    fn quantize(weights: &[f64], biases: &[f64], inputs: usize, outputs: usize, bits: u32) -> Self {
        let qmax = (1i64 << (bits - 1)) - 1;
        let wmax = weights
            .iter()
            .fold(0.0f64, |a, &w| a.max(w.abs()))
            .max(1e-12);
        let bmax = biases
            .iter()
            .fold(0.0f64, |a, &b| a.max(b.abs()))
            .max(1e-12);
        let scale = wmax / qmax as f64;
        let bias_scale = bmax / qmax as f64;
        QuantLayer {
            codes: weights
                .iter()
                .map(|&w| (w / scale).round().clamp(-(qmax as f64) - 1.0, qmax as f64) as i32)
                .collect(),
            bias_codes: biases
                .iter()
                .map(|&b| {
                    (b / bias_scale)
                        .round()
                        .clamp(-(qmax as f64) - 1.0, qmax as f64) as i32
                })
                .collect(),
            scale,
            bias_scale,
            inputs,
            outputs,
        }
    }

    fn weight(&self, i: usize) -> f64 {
        f64::from(self.codes[i]) * self.scale
    }

    fn bias(&self, o: usize) -> f64 {
        f64::from(self.bias_codes[o]) * self.bias_scale
    }
}

/// An [`Mlp`] whose weights are stored in signed fixed point at 16, 8
/// or 4 bits.
///
/// Inference dequantizes on the fly (code × scale) — numerically
/// identical to integer inference with a final rescale. Bit errors
/// flip uniformly chosen bits *within the stored codes*, which is the
/// fault model of the paper's Table 2: a flipped high-order bit in a
/// high-precision weight moves the value a lot, which is exactly why
/// the 16-bit model is the most fragile.
pub struct QuantizedMlp {
    layers: Vec<QuantLayer>,
    precision: WeightPrecision,
    input: usize,
    output: usize,
}

impl QuantizedMlp {
    /// Quantizes a trained float model.
    #[must_use]
    pub fn from_mlp(mlp: &Mlp, precision: WeightPrecision) -> Self {
        let layers = mlp
            .layers
            .iter()
            .map(|l| {
                QuantLayer::quantize(&l.weights, &l.biases, l.inputs, l.outputs, precision.bits())
            })
            .collect();
        QuantizedMlp {
            layers,
            precision,
            input: mlp.config().input,
            output: mlp.config().output,
        }
    }

    /// The stored precision.
    #[must_use]
    pub fn precision(&self) -> WeightPrecision {
        self.precision
    }

    /// Total number of weight/bias codes (error-injection targets).
    #[must_use]
    pub fn num_codes(&self) -> usize {
        self.layers
            .iter()
            .map(|l| l.codes.len() + l.bias_codes.len())
            .sum()
    }

    /// Class scores for one input (ReLU hidden layers; the softmax is
    /// monotone and skipped).
    ///
    /// # Errors
    ///
    /// Returns [`BaselineError::InputLengthMismatch`] for wrong input
    /// sizes.
    pub fn forward(&self, x: &[f64]) -> Result<Vec<f64>, BaselineError> {
        if x.len() != self.input {
            return Err(BaselineError::InputLengthMismatch {
                expected: self.input,
                actual: x.len(),
            });
        }
        let mut a = x.to_vec();
        for (li, layer) in self.layers.iter().enumerate() {
            let mut next = Vec::with_capacity(layer.outputs);
            for o in 0..layer.outputs {
                let mut sum = layer.bias(o);
                for (i, ai) in a.iter().enumerate().take(layer.inputs) {
                    sum += layer.weight(o * layer.inputs + i) * ai;
                }
                if li + 1 < self.layers.len() && sum < 0.0 {
                    sum = 0.0;
                }
                next.push(sum);
            }
            a = next;
        }
        Ok(a)
    }

    /// Predicted class for one input.
    ///
    /// # Errors
    ///
    /// Returns [`BaselineError::InputLengthMismatch`] for wrong input
    /// sizes.
    pub fn predict(&self, x: &[f64]) -> Result<usize, BaselineError> {
        Ok(argmax(&self.forward(x)?))
    }

    /// Fraction of correctly classified samples (`0.0` when empty).
    ///
    /// # Errors
    ///
    /// Propagates forward-pass validation errors.
    pub fn accuracy(&self, data: &[(Vec<f64>, usize)]) -> Result<f64, BaselineError> {
        if data.is_empty() {
            return Ok(0.0);
        }
        let mut correct = 0;
        for (x, y) in data {
            if self.predict(x)? == *y {
                correct += 1;
            }
        }
        Ok(correct as f64 / data.len() as f64)
    }

    /// Returns a copy in which every stored bit is flipped
    /// independently with probability `rate` — random bit errors over
    /// the weight memory.
    ///
    /// # Panics
    ///
    /// Panics if `rate ∉ [0, 1]`.
    #[must_use]
    pub fn with_bit_errors<R: Rng>(&self, rate: f64, rng: &mut R) -> Self {
        assert!((0.0..=1.0).contains(&rate), "rate must be in [0, 1]");
        let bits = self.precision.bits();
        let mut flip_code = |code: i32| -> i32 {
            let mut c = code;
            for b in 0..bits {
                if rng.random_bool(rate) {
                    c ^= 1 << b;
                }
            }
            // Sign-extend back into the value range of `bits`-wide
            // two's complement.
            let shift = 32 - bits;
            (c << shift) >> shift
        };
        let layers = self
            .layers
            .iter()
            .map(|l| QuantLayer {
                codes: l.codes.iter().map(|&c| flip_code(c)).collect(),
                bias_codes: l.bias_codes.iter().map(|&c| flip_code(c)).collect(),
                scale: l.scale,
                bias_scale: l.bias_scale,
                inputs: l.inputs,
                outputs: l.outputs,
            })
            .collect();
        QuantizedMlp {
            layers,
            precision: self.precision,
            input: self.input,
            output: self.output,
        }
    }
}

impl fmt::Debug for QuantizedMlp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "QuantizedMlp({}, {} codes, {}→{})",
            self.precision.name(),
            self.num_codes(),
            self.input,
            self.output
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mlp::MlpConfig;
    use rand::{rngs::StdRng, SeedableRng};

    fn trained_mlp() -> (Mlp, Vec<(Vec<f64>, usize)>) {
        let mut rng = StdRng::seed_from_u64(11);
        let mut data = Vec::new();
        for _ in 0..60 {
            let a: Vec<f64> = (0..4).map(|_| 0.25 + rng.random_range(-0.1..0.1)).collect();
            data.push((a, 0));
            let b: Vec<f64> = (0..4).map(|_| 0.75 + rng.random_range(-0.1..0.1)).collect();
            data.push((b, 1));
        }
        let cfg = MlpConfig {
            input: 4,
            hidden1: 12,
            hidden2: 8,
            output: 2,
            lr: 0.1,
            momentum: 0.9,
            epochs: 40,
            batch_size: 8,
            seed: 3,
        };
        let mut mlp = Mlp::new(&cfg);
        mlp.fit(&data).unwrap();
        (mlp, data)
    }

    #[test]
    fn precision_metadata() {
        assert_eq!(WeightPrecision::Bits16.bits(), 16);
        assert_eq!(WeightPrecision::Bits4.name(), "4-bit");
        assert_eq!(WeightPrecision::ALL.len(), 3);
    }

    #[test]
    fn sixteen_bit_quantization_is_nearly_lossless() {
        let (mlp, data) = trained_mlp();
        let q = QuantizedMlp::from_mlp(&mlp, WeightPrecision::Bits16);
        let fa = mlp.accuracy(&data).unwrap();
        let qa = q.accuracy(&data).unwrap();
        assert!((fa - qa).abs() < 0.02, "float {fa} vs q16 {qa}");
    }

    #[test]
    fn lower_precision_loses_some_accuracy_but_works() {
        let (mlp, data) = trained_mlp();
        let q4 = QuantizedMlp::from_mlp(&mlp, WeightPrecision::Bits4);
        let acc = q4.accuracy(&data).unwrap();
        assert!(acc > 0.7, "4-bit accuracy {acc}");
    }

    #[test]
    fn high_precision_is_more_fragile_under_bit_errors() {
        // The paper's Table 2 trend: at equal bit-error rate, the
        // 16-bit model degrades more than the 4-bit model because
        // flipped high-order bits move values further.
        let (mlp, data) = trained_mlp();
        let rate = 0.08;
        let trials = 12;
        let mut loss16 = 0.0;
        let mut loss4 = 0.0;
        for t in 0..trials {
            let mut rng = StdRng::seed_from_u64(100 + t);
            let q16 = QuantizedMlp::from_mlp(&mlp, WeightPrecision::Bits16);
            let q4 = QuantizedMlp::from_mlp(&mlp, WeightPrecision::Bits4);
            let c16 = q16.accuracy(&data).unwrap();
            let c4 = q4.accuracy(&data).unwrap();
            loss16 += c16 - q16.with_bit_errors(rate, &mut rng).accuracy(&data).unwrap();
            loss4 += c4 - q4.with_bit_errors(rate, &mut rng).accuracy(&data).unwrap();
        }
        assert!(
            loss16 > loss4,
            "16-bit mean loss {} should exceed 4-bit {}",
            loss16 / trials as f64,
            loss4 / trials as f64
        );
    }

    #[test]
    fn zero_rate_is_identity() {
        let (mlp, data) = trained_mlp();
        let q = QuantizedMlp::from_mlp(&mlp, WeightPrecision::Bits8);
        let mut rng = StdRng::seed_from_u64(5);
        let same = q.with_bit_errors(0.0, &mut rng);
        assert_eq!(q.accuracy(&data).unwrap(), same.accuracy(&data).unwrap());
    }

    #[test]
    fn forward_validates_input_length() {
        let (mlp, _) = trained_mlp();
        let q = QuantizedMlp::from_mlp(&mlp, WeightPrecision::Bits8);
        assert!(matches!(
            q.forward(&[0.0; 3]),
            Err(BaselineError::InputLengthMismatch { .. })
        ));
        assert_eq!(q.accuracy(&[]).unwrap(), 0.0);
    }

    #[test]
    fn debug_and_counts() {
        let (mlp, _) = trained_mlp();
        let q = QuantizedMlp::from_mlp(&mlp, WeightPrecision::Bits8);
        assert_eq!(q.num_codes(), mlp.num_parameters());
        assert!(format!("{q:?}").contains("8-bit"));
        assert_eq!(q.precision(), WeightPrecision::Bits8);
    }
}
