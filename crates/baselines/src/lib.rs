//! # hdface-baselines — the comparison learners
//!
//! The paper compares HDFace against a Deep Neural Network (a 4-layer
//! MLP with two hidden layers, Fig. 5b sweeps their sizes) and a
//! Support Vector Machine, both consuming the same HOG features. This
//! crate implements both from scratch:
//!
//! * [`Mlp`] — ReLU hidden layers, softmax cross-entropy, SGD with
//!   momentum, mini-batches; plus fixed-point weight quantization to
//!   16/8/4 bits ([`QuantizedMlp`]) with random bit-error injection
//!   for the Table 2 robustness study.
//! * [`LinearSvm`] — one-vs-rest linear SVM trained with
//!   Pegasos-style hinge-loss SGD.
//!
//! ```
//! use hdface_baselines::{Mlp, MlpConfig};
//!
//! // XOR-ish toy problem.
//! let data: Vec<(Vec<f64>, usize)> = vec![
//!     (vec![0.0, 0.0], 0),
//!     (vec![1.0, 1.0], 0),
//!     (vec![0.0, 1.0], 1),
//!     (vec![1.0, 0.0], 1),
//! ];
//! let cfg = MlpConfig { input: 2, hidden1: 16, hidden2: 16, output: 2,
//!                       lr: 0.1, momentum: 0.9, epochs: 400, batch_size: 4, seed: 7 };
//! let mut mlp = Mlp::new(&cfg);
//! mlp.fit(&data).unwrap();
//! assert!(mlp.accuracy(&data).unwrap() > 0.9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod mlp;
mod quant;
mod svm;

pub use error::BaselineError;
pub use mlp::{Mlp, MlpConfig};
pub use quant::{QuantizedMlp, WeightPrecision};
pub use svm::{LinearSvm, SvmConfig};
