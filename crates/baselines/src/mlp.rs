//! A from-scratch multilayer perceptron.

use std::fmt;

use rand::{rngs::StdRng, RngExt, SeedableRng};

use crate::error::BaselineError;

/// MLP architecture and training hyperparameters.
///
/// The paper's DNN is "four layers … where two hidden layers can get
/// different sizes"; its best configuration is 1024 × 1024.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MlpConfig {
    /// Input feature length.
    pub input: usize,
    /// First hidden layer width.
    pub hidden1: usize,
    /// Second hidden layer width.
    pub hidden2: usize,
    /// Number of classes.
    pub output: usize,
    /// SGD learning rate.
    pub lr: f64,
    /// Momentum coefficient.
    pub momentum: f64,
    /// Training epochs.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Weight-initialization and shuffling seed.
    pub seed: u64,
}

impl MlpConfig {
    /// The paper's best configuration for `input` features and
    /// `output` classes (1024×1024 hidden layers), with training
    /// hyperparameters suitable for HOG-scale inputs.
    #[must_use]
    pub fn paper_best(input: usize, output: usize) -> Self {
        MlpConfig {
            input,
            hidden1: 1024,
            hidden2: 1024,
            output,
            lr: 0.05,
            momentum: 0.9,
            epochs: 30,
            batch_size: 16,
            seed: 0,
        }
    }

    /// Same architecture family with custom hidden sizes (the Fig. 5b
    /// sweep).
    #[must_use]
    pub fn with_hidden(mut self, h1: usize, h2: usize) -> Self {
        self.hidden1 = h1;
        self.hidden2 = h2;
        self
    }
}

/// One fully connected layer (row-major weights, `out × in`).
#[derive(Debug, Clone)]
pub(crate) struct Layer {
    pub(crate) weights: Vec<f64>,
    pub(crate) biases: Vec<f64>,
    pub(crate) inputs: usize,
    pub(crate) outputs: usize,
}

impl Layer {
    fn new(inputs: usize, outputs: usize, rng: &mut StdRng) -> Self {
        // He initialization for ReLU layers.
        let scale = (2.0 / inputs.max(1) as f64).sqrt();
        let weights = (0..inputs * outputs)
            .map(|_| (rng.random_range(-1.0..1.0)) * scale)
            .collect();
        Layer {
            weights,
            biases: vec![0.0; outputs],
            inputs,
            outputs,
        }
    }

    fn forward(&self, x: &[f64], out: &mut Vec<f64>) {
        out.clear();
        for o in 0..self.outputs {
            let row = &self.weights[o * self.inputs..(o + 1) * self.inputs];
            let mut sum = self.biases[o];
            for (w, xi) in row.iter().zip(x) {
                sum += w * xi;
            }
            out.push(sum);
        }
    }
}

fn relu_inplace(v: &mut [f64]) {
    for x in v {
        if *x < 0.0 {
            *x = 0.0;
        }
    }
}

fn softmax_inplace(v: &mut [f64]) {
    let max = v.iter().fold(f64::NEG_INFINITY, |a, &b| a.max(b));
    let mut sum = 0.0;
    for x in v.iter_mut() {
        *x = (*x - max).exp();
        sum += *x;
    }
    for x in v {
        *x /= sum;
    }
}

/// The 4-layer (2 hidden) MLP baseline: ReLU activations, softmax
/// cross-entropy loss, SGD with momentum.
pub struct Mlp {
    pub(crate) layers: Vec<Layer>,
    config: MlpConfig,
    velocity: Vec<(Vec<f64>, Vec<f64>)>,
    rng: StdRng,
}

impl Mlp {
    /// Initializes the network with He-scaled random weights.
    ///
    /// # Panics
    ///
    /// Panics when any layer size is zero.
    #[must_use]
    pub fn new(config: &MlpConfig) -> Self {
        assert!(
            config.input > 0 && config.hidden1 > 0 && config.hidden2 > 0 && config.output > 0,
            "layer sizes must be positive"
        );
        let mut rng = StdRng::seed_from_u64(config.seed);
        let layers = vec![
            Layer::new(config.input, config.hidden1, &mut rng),
            Layer::new(config.hidden1, config.hidden2, &mut rng),
            Layer::new(config.hidden2, config.output, &mut rng),
        ];
        let velocity = layers
            .iter()
            .map(|l| (vec![0.0; l.weights.len()], vec![0.0; l.biases.len()]))
            .collect();
        Mlp {
            layers,
            config: *config,
            velocity,
            rng,
        }
    }

    /// The configuration the network was built with.
    #[must_use]
    pub fn config(&self) -> &MlpConfig {
        &self.config
    }

    /// Total number of trainable parameters.
    #[must_use]
    pub fn num_parameters(&self) -> usize {
        self.layers
            .iter()
            .map(|l| l.weights.len() + l.biases.len())
            .sum()
    }

    /// Class probabilities for one input.
    ///
    /// # Errors
    ///
    /// Returns [`BaselineError::InputLengthMismatch`] for wrong input
    /// sizes.
    pub fn forward(&self, x: &[f64]) -> Result<Vec<f64>, BaselineError> {
        if x.len() != self.config.input {
            return Err(BaselineError::InputLengthMismatch {
                expected: self.config.input,
                actual: x.len(),
            });
        }
        let mut a = x.to_vec();
        let mut next = Vec::new();
        for (i, layer) in self.layers.iter().enumerate() {
            layer.forward(&a, &mut next);
            if i + 1 < self.layers.len() {
                relu_inplace(&mut next);
            } else {
                softmax_inplace(&mut next);
            }
            std::mem::swap(&mut a, &mut next);
        }
        Ok(a)
    }

    /// Predicted class for one input.
    ///
    /// # Errors
    ///
    /// Returns [`BaselineError::InputLengthMismatch`] for wrong input
    /// sizes.
    pub fn predict(&self, x: &[f64]) -> Result<usize, BaselineError> {
        let probs = self.forward(x)?;
        Ok(argmax(&probs))
    }

    /// Fraction of correctly classified samples (`0.0` for an empty
    /// slice).
    ///
    /// # Errors
    ///
    /// Propagates forward-pass validation errors.
    pub fn accuracy(&self, data: &[(Vec<f64>, usize)]) -> Result<f64, BaselineError> {
        if data.is_empty() {
            return Ok(0.0);
        }
        let mut correct = 0;
        for (x, y) in data {
            if self.predict(x)? == *y {
                correct += 1;
            }
        }
        Ok(correct as f64 / data.len() as f64)
    }

    /// Trains with mini-batch SGD + momentum for the configured number
    /// of epochs; returns the final-epoch mean cross-entropy loss.
    ///
    /// # Errors
    ///
    /// Returns [`BaselineError::EmptyTrainingSet`] for no samples and
    /// the usual shape validation errors per sample.
    pub fn fit(&mut self, data: &[(Vec<f64>, usize)]) -> Result<f64, BaselineError> {
        if data.is_empty() {
            return Err(BaselineError::EmptyTrainingSet);
        }
        for (x, y) in data {
            if x.len() != self.config.input {
                return Err(BaselineError::InputLengthMismatch {
                    expected: self.config.input,
                    actual: x.len(),
                });
            }
            if *y >= self.config.output {
                return Err(BaselineError::LabelOutOfRange {
                    label: *y,
                    num_classes: self.config.output,
                });
            }
        }
        let mut order: Vec<usize> = (0..data.len()).collect();
        let bs = self.config.batch_size.max(1);
        let mut last_loss = 0.0;
        for _ in 0..self.config.epochs {
            // Shuffle.
            for i in (1..order.len()).rev() {
                let j = self.rng.random_range(0..=i);
                order.swap(i, j);
            }
            last_loss = 0.0;
            for batch in order.chunks(bs) {
                last_loss += self.train_batch(data, batch);
            }
            last_loss /= data.len() as f64;
        }
        Ok(last_loss)
    }

    /// Runs one mini-batch: accumulates gradients over the batch, then
    /// applies a momentum update. Returns the summed sample losses.
    fn train_batch(&mut self, data: &[(Vec<f64>, usize)], batch: &[usize]) -> f64 {
        let n_layers = self.layers.len();
        let mut grad_w: Vec<Vec<f64>> = self
            .layers
            .iter()
            .map(|l| vec![0.0; l.weights.len()])
            .collect();
        let mut grad_b: Vec<Vec<f64>> = self
            .layers
            .iter()
            .map(|l| vec![0.0; l.biases.len()])
            .collect();
        let mut total_loss = 0.0;

        for &idx in batch {
            let (x, y) = &data[idx];
            // Forward pass retaining activations.
            let mut activations: Vec<Vec<f64>> = vec![x.clone()];
            let mut buf = Vec::new();
            for (i, layer) in self.layers.iter().enumerate() {
                layer.forward(activations.last().expect("non-empty"), &mut buf);
                if i + 1 < n_layers {
                    relu_inplace(&mut buf);
                } else {
                    softmax_inplace(&mut buf);
                }
                activations.push(buf.clone());
            }
            let probs = activations.last().expect("non-empty");
            total_loss += -(probs[*y].max(1e-12)).ln();

            // Backward: softmax+CE delta, then ReLU chain.
            let mut delta: Vec<f64> = probs.clone();
            delta[*y] -= 1.0;
            for li in (0..n_layers).rev() {
                let input = &activations[li];
                let layer = &self.layers[li];
                for (o, &d) in delta.iter().enumerate().take(layer.outputs) {
                    grad_b[li][o] += d;
                    let row = &mut grad_w[li][o * layer.inputs..(o + 1) * layer.inputs];
                    for (g, xi) in row.iter_mut().zip(input) {
                        *g += d * xi;
                    }
                }
                if li > 0 {
                    // Propagate delta through weights and the ReLU of
                    // the previous layer.
                    let mut prev = vec![0.0; layer.inputs];
                    for (o, &d) in delta.iter().enumerate().take(layer.outputs) {
                        let row = &layer.weights[o * layer.inputs..(o + 1) * layer.inputs];
                        for (p, w) in prev.iter_mut().zip(row) {
                            *p += d * w;
                        }
                    }
                    for (p, a) in prev.iter_mut().zip(&activations[li]) {
                        if *a <= 0.0 {
                            *p = 0.0;
                        }
                    }
                    delta = prev;
                }
            }
        }

        // Momentum update.
        let scale = self.config.lr / batch.len() as f64;
        for li in 0..n_layers {
            let (vw, vb) = &mut self.velocity[li];
            for (i, g) in grad_w[li].iter().enumerate() {
                vw[i] = self.config.momentum * vw[i] - scale * g;
                self.layers[li].weights[i] += vw[i];
            }
            for (i, g) in grad_b[li].iter().enumerate() {
                vb[i] = self.config.momentum * vb[i] - scale * g;
                self.layers[li].biases[i] += vb[i];
            }
        }
        total_loss
    }
}

pub(crate) fn argmax(v: &[f64]) -> usize {
    v.iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .map(|(i, _)| i)
        .unwrap_or(0)
}

impl fmt::Debug for Mlp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Mlp({}-{}-{}-{}, {} params)",
            self.config.input,
            self.config.hidden1,
            self.config.hidden2,
            self.config.output,
            self.num_parameters()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blob_data(seed: u64, n_per: usize) -> Vec<(Vec<f64>, usize)> {
        // Two Gaussian-ish blobs in 4-D.
        let mut rng = StdRng::seed_from_u64(seed);
        let mut data = Vec::new();
        for _ in 0..n_per {
            let a: Vec<f64> = (0..4)
                .map(|_| 0.3 + rng.random_range(-0.15..0.15))
                .collect();
            data.push((a, 0));
            let b: Vec<f64> = (0..4)
                .map(|_| 0.7 + rng.random_range(-0.15..0.15))
                .collect();
            data.push((b, 1));
        }
        data
    }

    fn small_cfg() -> MlpConfig {
        MlpConfig {
            input: 4,
            hidden1: 16,
            hidden2: 8,
            output: 2,
            lr: 0.1,
            momentum: 0.9,
            epochs: 60,
            batch_size: 8,
            seed: 1,
        }
    }

    #[test]
    fn forward_outputs_probabilities() {
        let mlp = Mlp::new(&small_cfg());
        let p = mlp.forward(&[0.1, 0.2, 0.3, 0.4]).unwrap();
        assert_eq!(p.len(), 2);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(p.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn learns_separable_blobs() {
        let mut mlp = Mlp::new(&small_cfg());
        let train = blob_data(1, 40);
        let test = blob_data(2, 40);
        let loss = mlp.fit(&train).unwrap();
        assert!(loss < 0.3, "final loss {loss}");
        let acc = mlp.accuracy(&test).unwrap();
        assert!(acc > 0.95, "accuracy {acc}");
    }

    #[test]
    fn rejects_bad_inputs() {
        let mut mlp = Mlp::new(&small_cfg());
        assert!(matches!(mlp.fit(&[]), Err(BaselineError::EmptyTrainingSet)));
        assert!(matches!(
            mlp.forward(&[0.0; 3]),
            Err(BaselineError::InputLengthMismatch { .. })
        ));
        assert!(matches!(
            mlp.fit(&[(vec![0.0; 4], 5)]),
            Err(BaselineError::LabelOutOfRange { .. })
        ));
    }

    #[test]
    fn accuracy_empty_is_zero() {
        let mlp = Mlp::new(&small_cfg());
        assert_eq!(mlp.accuracy(&[]).unwrap(), 0.0);
    }

    #[test]
    fn parameter_count_matches_architecture() {
        let mlp = Mlp::new(&small_cfg());
        // (4·16 + 16) + (16·8 + 8) + (8·2 + 2) = 80+136+18.
        assert_eq!(mlp.num_parameters(), 80 + 136 + 18);
    }

    #[test]
    fn training_is_deterministic_per_seed() {
        let train = blob_data(3, 20);
        let mut a = Mlp::new(&small_cfg());
        let mut b = Mlp::new(&small_cfg());
        a.fit(&train).unwrap();
        b.fit(&train).unwrap();
        let x = vec![0.5; 4];
        assert_eq!(a.forward(&x).unwrap(), b.forward(&x).unwrap());
    }

    #[test]
    fn paper_best_config_shape() {
        let c = MlpConfig::paper_best(288, 7);
        assert_eq!((c.hidden1, c.hidden2), (1024, 1024));
        let swept = c.with_hidden(128, 256);
        assert_eq!((swept.hidden1, swept.hidden2), (128, 256));
    }

    #[test]
    fn argmax_picks_largest() {
        assert_eq!(argmax(&[0.1, 0.7, 0.2]), 1);
        assert_eq!(argmax(&[]), 0);
    }

    #[test]
    fn debug_formats() {
        let mlp = Mlp::new(&small_cfg());
        assert!(format!("{mlp:?}").contains("4-16-8-2"));
    }
}
