//! Error type for the baseline learners.

use std::error::Error;
use std::fmt;

/// Errors raised by the baseline learners.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum BaselineError {
    /// An input vector length did not match the model's input size.
    InputLengthMismatch {
        /// Expected input length.
        expected: usize,
        /// Actual input length.
        actual: usize,
    },
    /// A label was outside `0..num_classes`.
    LabelOutOfRange {
        /// The offending label.
        label: usize,
        /// The number of classes.
        num_classes: usize,
    },
    /// Training was invoked with no samples.
    EmptyTrainingSet,
}

impl fmt::Display for BaselineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BaselineError::InputLengthMismatch { expected, actual } => {
                write!(f, "input has {actual} values, model expects {expected}")
            }
            BaselineError::LabelOutOfRange { label, num_classes } => {
                write!(f, "label {label} out of range for {num_classes} classes")
            }
            BaselineError::EmptyTrainingSet => write!(f, "training requires at least one sample"),
        }
    }
}

impl Error for BaselineError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        assert!(BaselineError::InputLengthMismatch {
            expected: 2,
            actual: 3
        }
        .to_string()
        .contains('3'));
        assert!(BaselineError::EmptyTrainingSet
            .to_string()
            .contains("sample"));
        assert!(BaselineError::LabelOutOfRange {
            label: 4,
            num_classes: 2
        }
        .to_string()
        .contains('4'));
    }
}
