//! Signed orientation binning geometry, shared by both extractors.
//!
//! Bins partition the full circle `[0, 2π)` into `B` equal sectors,
//! `B` a multiple of 4, so that the quadrant boundaries 0, π/2, π,
//! 3π/2 are also bin boundaries. Inside one quadrant `tan` is
//! monotonically increasing, which is what lets the hyperdimensional
//! extractor replace `atan2` with a chain of tan comparisons
//! (paper §4.3).

/// Quadrant of a gradient vector from its component signs, numbered
/// 0–3 counter-clockwise (0 ⇔ θ ∈ [0, π/2)).
///
/// Zero components count as positive, matching the convention of the
/// statistical sign test on hypervectors.
#[must_use]
pub fn quadrant_of(gx_non_negative: bool, gy_non_negative: bool) -> usize {
    match (gx_non_negative, gy_non_negative) {
        (true, true) => 0,
        (false, true) => 1,
        (false, false) => 2,
        (true, false) => 3,
    }
}

/// Reference float binning: the signed bin of `atan2(gy, gx)`.
///
/// # Panics
///
/// Panics if `bins` is zero.
#[must_use]
pub fn bin_of_angle(gx: f64, gy: f64, bins: usize) -> usize {
    assert!(bins > 0, "bins must be positive");
    let theta = gy.atan2(gx).rem_euclid(std::f64::consts::TAU);
    let raw = (theta / (std::f64::consts::TAU / bins as f64)) as usize;
    raw.min(bins - 1)
}

/// The interior bin boundaries of one quadrant, as tangent values.
///
/// For `B` bins there are `B/4 − 1` interior boundaries per quadrant;
/// each is described by the tangent of its angle together with the
/// pre-inverted magnitude the comparison hypervector should encode
/// (the paper encodes `V_tanθᵢ` when `|tan θᵢ| ≤ 1` and `V_cotθᵢ`
/// otherwise so all values stay inside `[-1, 1]`).
#[derive(Debug, Clone, PartialEq)]
pub struct BinBoundaries {
    bins: usize,
    /// `(boundary angle tangent, use_cot)` per interior boundary of
    /// quadrant 0, in increasing angle order. Other quadrants reuse
    /// the same tangents because `tan` has period π and the quadrant
    /// offset is handled separately.
    tangents: Vec<(f64, bool)>,
}

impl BinBoundaries {
    /// Computes the boundary table for `bins` sectors.
    ///
    /// # Panics
    ///
    /// Panics if `bins` is not a positive multiple of 4.
    #[must_use]
    pub fn new(bins: usize) -> Self {
        assert!(
            bins > 0 && bins.is_multiple_of(4),
            "bins must be a positive multiple of 4"
        );
        let per_quadrant = bins / 4;
        let width = std::f64::consts::TAU / bins as f64;
        let tangents = (1..per_quadrant)
            .map(|i| {
                let theta = i as f64 * width; // interior boundary angle
                let t = theta.tan();
                (t, t.abs() > 1.0)
            })
            .collect();
        BinBoundaries { bins, tangents }
    }

    /// Total number of bins.
    #[must_use]
    pub fn bins(&self) -> usize {
        self.bins
    }

    /// Number of bins per quadrant.
    #[must_use]
    pub fn per_quadrant(&self) -> usize {
        self.bins / 4
    }

    /// Interior boundary tangents of one quadrant (increasing angle):
    /// `(tan θᵢ, use_cot)` where `use_cot` indicates `|tan θᵢ| > 1`
    /// and comparisons should use the reciprocal.
    #[must_use]
    pub fn tangents(&self) -> &[(f64, bool)] {
        &self.tangents
    }

    /// Reference in-quadrant binning from the ratio `t = |gy|/|gx|`
    /// expressed through a comparison oracle: `passed(i)` must return
    /// `true` when the gradient angle lies *above* interior boundary
    /// `i`. Returns the bin index within the quadrant
    /// (`0..per_quadrant`).
    ///
    /// Both extractors funnel through this so the float and
    /// hyperdimensional paths share one piece of boundary logic.
    pub fn locate<F: FnMut(usize) -> bool>(&self, mut passed: F) -> usize {
        // Boundaries are sorted by angle; the bin is the count of
        // boundaries passed. (Linear scan: B/4 − 1 comparisons; for
        // the paper's B = 8 that is a single comparison.)
        let mut bin = 0;
        for i in 0..self.tangents.len() {
            if passed(i) {
                bin = i + 1;
            } else {
                break;
            }
        }
        bin
    }

    /// Converts a quadrant index and an in-quadrant bin to the global
    /// bin index.
    ///
    /// In-quadrant ordering follows increasing θ in *every* quadrant;
    /// since tan is increasing on each quadrant's open interval this
    /// is exactly the order `locate` produces.
    #[must_use]
    pub fn global_bin(&self, quadrant: usize, in_quadrant: usize) -> usize {
        debug_assert!(quadrant < 4 && in_quadrant < self.per_quadrant());
        quadrant * self.per_quadrant() + in_quadrant
    }

    /// Float reference implementation of the quadrant + comparison
    /// scheme. Exists to validate that the comparison-based path
    /// agrees with [`bin_of_angle`]'s `atan2`.
    #[must_use]
    pub fn bin_by_comparisons(&self, gx: f64, gy: f64) -> usize {
        let q = quadrant_of(gx >= 0.0, gy >= 0.0);
        // t = tan θ restricted to the quadrant; tan is π-periodic so
        // quadrants 2,3 reuse quadrant 0,1 tangents. Within any
        // quadrant, θ increasing ⇔ tan increasing, and
        // tan θ = gy/gx (sign carried by the quadrant-local signs).
        let in_q = self.locate(|i| {
            let (r, use_cot) = self.tangents[i];
            let s = if gx.abs() < f64::EPSILON {
                // Vertical gradient: beyond every finite boundary.
                f64::INFINITY * gy.signum()
            } else {
                gy / gx
            };
            // Quadrants 1 and 3 have tan ranging over (−∞, 0); their
            // interior boundaries in increasing-θ order correspond to
            // tan values shifted by π from quadrant 0 boundaries, i.e.
            // the same tangent values but compared on the negative
            // branch: tan(θ) with θ ∈ (π/2, π) equals tan(θ − π) < 0.
            // Using the π-periodicity, comparing s against r works in
            // all quadrants, with the *branch* selected by quadrant
            // parity: odd quadrants compare against the boundary at
            // θᵢ + π/2 whose tangent is −cot θᵢ = −1/r.
            let boundary = if q.is_multiple_of(2) { r } else { -1.0 / r };
            let _ = use_cot; // the HD path uses this flag; float compares directly
            s > boundary
        });
        self.global_bin(q, in_q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::TAU;

    #[test]
    fn quadrants_cover_sign_combinations() {
        assert_eq!(quadrant_of(true, true), 0);
        assert_eq!(quadrant_of(false, true), 1);
        assert_eq!(quadrant_of(false, false), 2);
        assert_eq!(quadrant_of(true, false), 3);
    }

    #[test]
    fn bin_of_angle_cardinal_directions() {
        // 8 bins of 45°: east = bin 0, north = bin 2, west = 4, south = 6.
        assert_eq!(bin_of_angle(1.0, 0.0, 8), 0);
        assert_eq!(bin_of_angle(0.0, 1.0, 8), 2);
        assert_eq!(bin_of_angle(-1.0, 0.0, 8), 4);
        assert_eq!(bin_of_angle(0.0, -1.0, 8), 6);
        // Diagonal NE (45°) falls into bin 1.
        assert_eq!(bin_of_angle(1.0, 1.0 + 1e-9, 8), 1);
    }

    #[test]
    fn boundaries_count_per_quadrant() {
        assert_eq!(BinBoundaries::new(8).tangents().len(), 1);
        assert_eq!(BinBoundaries::new(16).tangents().len(), 3);
        assert_eq!(BinBoundaries::new(8).per_quadrant(), 2);
        assert_eq!(BinBoundaries::new(8).bins(), 8);
    }

    #[test]
    fn eight_bin_boundary_is_45_degrees() {
        let b = BinBoundaries::new(8);
        let (t, use_cot) = b.tangents()[0];
        assert!((t - 1.0).abs() < 1e-12);
        assert!(!use_cot); // |tan 45°| = 1 stays in tan form
    }

    #[test]
    fn sixteen_bins_use_cot_for_steep_boundaries() {
        let b = BinBoundaries::new(16);
        // Boundaries at 22.5°, 45°, 67.5°: the last exceeds |tan| = 1.
        assert!(!b.tangents()[0].1);
        assert!(!b.tangents()[1].1);
        assert!(b.tangents()[2].1);
    }

    #[test]
    fn comparison_binning_matches_atan2_everywhere() {
        for bins in [8usize, 16] {
            let b = BinBoundaries::new(bins);
            for k in 0..720 {
                let theta = k as f64 / 720.0 * TAU + 0.0007; // avoid exact boundaries
                let (gy, gx) = theta.sin_cos();
                let want = bin_of_angle(gx, gy, bins);
                let got = b.bin_by_comparisons(gx, gy);
                assert_eq!(got, want, "bins={bins} θ={theta}");
            }
        }
    }

    #[test]
    fn locate_counts_passed_boundaries() {
        let b = BinBoundaries::new(16);
        assert_eq!(b.locate(|_| false), 0);
        assert_eq!(b.locate(|i| i < 2), 2);
        assert_eq!(b.locate(|_| true), 3);
    }

    #[test]
    #[should_panic(expected = "multiple of 4")]
    fn new_rejects_non_multiple_of_four() {
        let _ = BinBoundaries::new(6);
    }

    #[test]
    fn global_bin_layout() {
        let b = BinBoundaries::new(8);
        assert_eq!(b.global_bin(0, 1), 1);
        assert_eq!(b.global_bin(3, 0), 6);
    }
}
