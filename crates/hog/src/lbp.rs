//! Local Binary Patterns — the second classic feature family the
//! paper's §2 lists next to HOG ("Popular feature extractions are …
//! Histograms of Oriented Gradients (HOGs), … Local Binary Patterns
//! (LBPs)"). Provided so the reproduction covers the same extractor
//! design space the paper situates itself in.
//!
//! LBP is *naturally binary*: each pixel's 8-neighbor comparison
//! pattern is already a bit string, which is why the family composes
//! well with hyperdimensional encodings downstream.

use hdface_imaging::GrayImage;

/// Configuration of the LBP extractor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LbpConfig {
    /// Side length of a square histogram cell in pixels.
    pub cell_size: usize,
    /// Use the 59-bin *uniform pattern* histogram (patterns with at
    /// most two 0↔1 transitions keep their own bin, the rest share
    /// one) instead of the raw 256-bin histogram.
    pub uniform: bool,
}

impl Default for LbpConfig {
    fn default() -> Self {
        LbpConfig {
            cell_size: 8,
            uniform: true,
        }
    }
}

/// Number of circular 0↔1 transitions in an 8-bit pattern.
fn transitions(pattern: u8) -> u32 {
    let rotated = pattern.rotate_left(1);
    (pattern ^ rotated).count_ones()
}

/// The Local Binary Patterns extractor.
///
/// ```
/// use hdface_hog::{Lbp, LbpConfig};
/// use hdface_imaging::GrayImage;
///
/// let lbp = Lbp::new(LbpConfig::default());
/// let img = GrayImage::from_fn(16, 16, |x, y| ((x + y) % 3) as f32 / 2.0);
/// let features = lbp.extract(&img);
/// assert_eq!(features.len(), 2 * 2 * 59); // 2x2 cells, uniform bins
/// ```
#[derive(Debug, Clone)]
pub struct Lbp {
    config: LbpConfig,
    /// Pattern → bin mapping (identity for raw; uniform-collapsed
    /// otherwise).
    bin_of: Vec<usize>,
    bins: usize,
}

impl Lbp {
    /// Creates an extractor.
    ///
    /// # Panics
    ///
    /// Panics if `cell_size == 0`.
    #[must_use]
    pub fn new(config: LbpConfig) -> Self {
        assert!(config.cell_size > 0, "cell_size must be positive");
        let (bin_of, bins) = if config.uniform {
            // Uniform patterns (≤2 transitions) each get a bin; all
            // non-uniform patterns share the last bin → 58 + 1.
            let mut map = vec![0usize; 256];
            let mut next = 0usize;
            for (p, slot) in map.iter_mut().enumerate() {
                if transitions(p as u8) <= 2 {
                    *slot = next;
                    next += 1;
                }
            }
            let shared = next;
            for (p, slot) in map.iter_mut().enumerate() {
                if transitions(p as u8) > 2 {
                    *slot = shared;
                }
            }
            (map, shared + 1)
        } else {
            ((0..256usize).collect(), 256)
        };
        Lbp {
            config,
            bin_of,
            bins,
        }
    }

    /// Histogram bins per cell (59 uniform / 256 raw).
    #[must_use]
    pub fn bins(&self) -> usize {
        self.bins
    }

    /// The extractor configuration.
    #[must_use]
    pub fn config(&self) -> &LbpConfig {
        &self.config
    }

    /// The 8-bit neighbor-comparison pattern at `(x, y)` (clamped
    /// borders), clockwise from the top-left neighbor.
    #[must_use]
    pub fn pattern_at(image: &GrayImage, x: usize, y: usize) -> u8 {
        let c = image.get_clamped(x as isize, y as isize);
        const OFFSETS: [(isize, isize); 8] = [
            (-1, -1),
            (0, -1),
            (1, -1),
            (1, 0),
            (1, 1),
            (0, 1),
            (-1, 1),
            (-1, 0),
        ];
        let mut pattern = 0u8;
        for (i, (dx, dy)) in OFFSETS.iter().enumerate() {
            if image.get_clamped(x as isize + dx, y as isize + dy) >= c {
                pattern |= 1 << i;
            }
        }
        pattern
    }

    /// Extracts per-cell pattern histograms, flattened row-major by
    /// cell then bin, each normalized by cell area (values in
    /// `[0, 1]`).
    #[must_use]
    pub fn extract(&self, image: &GrayImage) -> Vec<f64> {
        let c = self.config.cell_size;
        let cells_x = image.width() / c;
        let cells_y = image.height() / c;
        let mut out = vec![0.0f64; cells_x * cells_y * self.bins];
        let area = (c * c) as f64;
        for cy in 0..cells_y {
            for cx in 0..cells_x {
                let base = (cy * cells_x + cx) * self.bins;
                for py in 0..c {
                    for px in 0..c {
                        let pattern = Self::pattern_at(image, cx * c + px, cy * c + py);
                        out[base + self.bin_of[pattern as usize]] += 1.0 / area;
                    }
                }
            }
        }
        out
    }

    /// Feature length for an image of the given size.
    #[must_use]
    pub fn feature_len(&self, width: usize, height: usize) -> usize {
        (width / self.config.cell_size) * (height / self.config.cell_size) * self.bins
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transition_counts() {
        assert_eq!(transitions(0b0000_0000), 0);
        assert_eq!(transitions(0b1111_1111), 0);
        assert_eq!(transitions(0b0000_1111), 2);
        assert_eq!(transitions(0b0101_0101), 8);
    }

    #[test]
    fn uniform_mapping_has_59_bins() {
        let lbp = Lbp::new(LbpConfig {
            cell_size: 8,
            uniform: true,
        });
        assert_eq!(lbp.bins(), 59);
        let raw = Lbp::new(LbpConfig {
            cell_size: 8,
            uniform: false,
        });
        assert_eq!(raw.bins(), 256);
    }

    #[test]
    fn flat_image_pattern_is_all_ones() {
        // With >= comparisons, equal neighbors set every bit.
        let img = GrayImage::filled(5, 5, 0.5);
        assert_eq!(Lbp::pattern_at(&img, 2, 2), 0xFF);
    }

    #[test]
    fn bright_center_pattern_is_zero() {
        let mut img = GrayImage::filled(3, 3, 0.2);
        img.set(1, 1, 0.9);
        assert_eq!(Lbp::pattern_at(&img, 1, 1), 0);
    }

    #[test]
    fn histograms_are_normalized() {
        let lbp = Lbp::new(LbpConfig::default());
        let img = GrayImage::from_fn(16, 16, |x, y| ((x * y) % 7) as f32 / 6.0);
        let f = lbp.extract(&img);
        assert_eq!(f.len(), lbp.feature_len(16, 16));
        // Each cell histogram sums to 1.
        for cell in f.chunks(lbp.bins()) {
            let sum: f64 = cell.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9, "cell sums to {sum}");
        }
    }

    #[test]
    fn distinguishes_textures() {
        let lbp = Lbp::new(LbpConfig::default());
        let stripes = GrayImage::from_fn(16, 16, |_, y| (y % 2) as f32);
        let flat = GrayImage::filled(16, 16, 0.5);
        let fs = lbp.extract(&stripes);
        let ff = lbp.extract(&flat);
        let diff: f64 = fs.iter().zip(&ff).map(|(a, b)| (a - b).abs()).sum();
        assert!(diff > 0.5, "stripes vs flat LBP differ by only {diff}");
    }

    #[test]
    #[should_panic(expected = "cell_size")]
    fn zero_cell_panics() {
        let _ = Lbp::new(LbpConfig {
            cell_size: 0,
            uniform: true,
        });
    }
}
