//! # hdface-hog — histogram-of-oriented-gradients, classic and hyperdimensional
//!
//! Two implementations of the same feature extractor:
//!
//! * [`ClassicHog`] — the float reference: central-difference
//!   gradients, magnitude `√((Gx²+Gy²)/2)`, signed orientation
//!   binning, per-cell histograms (optionally block-normalized).
//! * [`HyperHog`] — the paper's contribution (§4.3): the *entire*
//!   pipeline runs on stochastic binary hypervectors. Pixels are
//!   quantized into correlative hypervectors, gradients are halved
//!   subtractions (⊕), magnitudes use stochastic squaring and
//!   binary-search square roots, and the angle bin is found by
//!   quadrant localization plus monotone-tan comparisons against
//!   precomputed `V_tanθᵢ` / `V_cotθᵢ` codebooks — never computing an
//!   arctangent.
//!
//! The crate also ships the two sibling feature families §2 of the
//! paper names — [`Lbp`] (local binary patterns) and [`HaarBank`]
//! (HAAR-like rectangular features over integral images) — so
//! extractor comparisons stay in-repo.
//!
//! Both HOG implementations produce per-(cell, bin) histogram values with identical
//! normalization (sum of magnitudes ÷ cell area), so their outputs are
//! directly comparable; `HyperHog` additionally bundles the slots into
//! a single feature hypervector for the HDC classifier.
//!
//! ```
//! use hdface_hog::{ClassicHog, HogConfig};
//! use hdface_imaging::GrayImage;
//!
//! let img = GrayImage::from_fn(16, 16, |x, _| (x % 2) as f32);
//! let hog = ClassicHog::new(HogConfig::default());
//! let feats = hog.extract(&img);
//! assert_eq!(feats.cells_x(), 2); // 16 / 8
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod binning;
mod classic;
mod config;
mod features;
mod haar;
mod hyper;
mod lbp;

pub use binning::{bin_of_angle, quadrant_of, BinBoundaries};
pub use classic::{gradient_at, ClassicHog};
pub use config::{Accumulation, Assembly, HogConfig, HyperHogConfig};
pub use features::HogFeatures;
pub use haar::{HaarBank, HaarFeature, HaarKind};
pub use hyper::{CachedSlot, HogScratch, HyperHog, HyperHogError, LevelCellCache};
pub use lbp::{Lbp, LbpConfig};
