//! HOG configuration.

/// Geometry and binning parameters shared by the classic and
/// hyperdimensional extractors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HogConfig {
    /// Side length of a square cell in pixels.
    pub cell_size: usize,
    /// Number of signed orientation bins over the full circle.
    /// Must be a positive multiple of 4 so quadrant boundaries
    /// (π/2, π, 3π/2 — where tan is non-monotonic) coincide with bin
    /// boundaries, as the paper's angle-bin scheme requires.
    pub bins: usize,
    /// Whether the classic extractor applies 2×2 block L2
    /// normalization after building cell histograms. The
    /// hyperdimensional pipeline stops at cell histograms (as in the
    /// paper), so parity tests disable this.
    pub block_normalize: bool,
}

impl HogConfig {
    /// The paper's configuration: 8×8 cells, 8 signed bins (its bin
    /// boundaries are indexed i = 1…8), no block normalization.
    #[must_use]
    pub fn paper() -> Self {
        HogConfig {
            cell_size: 8,
            bins: 8,
            block_normalize: false,
        }
    }

    /// Validates the invariants documented on the fields.
    ///
    /// # Panics
    ///
    /// Panics if `cell_size == 0` or `bins` is not a positive multiple
    /// of 4.
    pub fn validate(&self) {
        assert!(self.cell_size > 0, "cell_size must be positive");
        assert!(
            self.bins > 0 && self.bins.is_multiple_of(4),
            "bins must be a positive multiple of 4 (got {})",
            self.bins
        );
    }

    /// Number of whole cells that fit horizontally in a `width`-pixel
    /// image.
    #[must_use]
    pub fn cells_for(&self, extent: usize) -> usize {
        extent / self.cell_size
    }

    /// Total feature length for an image of the given size
    /// (cells × bins; block normalization preserves length).
    #[must_use]
    pub fn feature_len(&self, width: usize, height: usize) -> usize {
        self.cells_for(width) * self.cells_for(height) * self.bins
    }
}

impl Default for HogConfig {
    fn default() -> Self {
        Self::paper()
    }
}

/// How per-(cell, bin) slot values are assembled into the final
/// feature hypervector.
///
/// Two independently drawn stochastic encodings of the same value `a`
/// agree only up to `δ = a²`, so bundling raw stochastic slot vectors
/// yields a *linear kernel on histogram values with heavy
/// attenuation*. The paper's §3 "base hypervector generation"
/// describes correlative **vector quantization** — a deterministic
/// level codebook where equal values map to identical hypervectors
/// and nearby values stay similar — which is the representation the
/// classifier wants. Both are provided; quantized is the default and
/// the difference is measured by the `exp_ablation` experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Assembly {
    /// Quantize each slot's decoded value onto a correlative level
    /// codebook (deterministic; strong kernel). One popcount + one
    /// table lookup per slot — still all-HD machinery.
    #[default]
    Quantized,
    /// Bind the raw stochastic slot vectors directly (pure §4
    /// arithmetic end-to-end; weak linear kernel).
    Stochastic,
}

/// How per-(cell, bin) histogram values are accumulated across the
/// pixels of a cell.
///
/// The paper defines the per-pixel magnitude pipeline in HD terms but
/// leaves histogram accumulation unspecified; its own comparison and
/// binary-search machinery reads hypervectors out through popcounts,
/// so popcount **read-out accumulation** — decode each pixel's
/// magnitude (one XOR + popcount), sum the scalars per slot, encode
/// the slot total once — is consistent HD practice and averages the
/// per-pixel stochastic noise down by `√count`. The pure
/// **running-average** alternative (`slotₖ = (k/(k+1))·slotₖ₋₁ ⊕
/// (1/(k+1))·mag`) keeps everything as hypervector ops but its final
/// noise stays at `1/√D` no matter how many pixels contribute; the
/// `exp_ablation` experiment quantifies the difference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Accumulation {
    /// Popcount read-out per pixel, scalar summation, single re-encode
    /// (default; `√count` noise averaging).
    #[default]
    Readout,
    /// Per-slot running weighted average with count-ratio correction
    /// (pure ⊕/⊗ pipeline; noisier).
    RunningAverage,
}

/// Additional parameters of the hyperdimensional extractor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HyperHogConfig {
    /// Shared geometry/binning parameters.
    pub hog: HogConfig,
    /// Hypervector dimensionality `D` (the paper sweeps 1k–10k and
    /// settles on 4k).
    pub dim: usize,
    /// Bisection iterations for the per-pixel magnitude square root.
    /// Six halvings reach 1.6% resolution — at the decode noise floor
    /// of D = 4k — at 40% less cost than the generic default of 10.
    pub sqrt_iters: usize,
    /// Random bit-error rate injected into every intermediate
    /// hypervector (pixel encodings, magnitudes, slot values and the
    /// bundled feature), used by the Table 2 robustness study.
    /// `0.0` disables injection.
    pub bit_error_rate: f64,
    /// Slot-to-feature assembly mode.
    pub assembly: Assembly,
    /// Histogram accumulation mode.
    pub accumulation: Accumulation,
    /// Number of quantization levels of the correlative slot
    /// codebook (ignored by [`Assembly::Stochastic`]).
    pub levels: usize,
}

impl HyperHogConfig {
    /// Paper defaults at the given dimensionality.
    #[must_use]
    pub fn with_dim(dim: usize) -> Self {
        HyperHogConfig {
            hog: HogConfig::paper(),
            dim,
            sqrt_iters: 6,
            bit_error_rate: 0.0,
            assembly: Assembly::Quantized,
            accumulation: Accumulation::Readout,
            levels: 32,
        }
    }

    /// Returns a copy with the given accumulation mode.
    #[must_use]
    pub fn with_accumulation(mut self, accumulation: Accumulation) -> Self {
        self.accumulation = accumulation;
        self
    }

    /// Returns a copy with the given bit-error rate.
    #[must_use]
    pub fn with_bit_error_rate(mut self, rate: f64) -> Self {
        self.bit_error_rate = rate;
        self
    }

    /// Returns a copy with the given assembly mode.
    #[must_use]
    pub fn with_assembly(mut self, assembly: Assembly) -> Self {
        self.assembly = assembly;
        self
    }
}

impl Default for HyperHogConfig {
    fn default() -> Self {
        Self::with_dim(4096)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_values() {
        let c = HogConfig::paper();
        assert_eq!(c.cell_size, 8);
        assert_eq!(c.bins, 8);
        assert!(!c.block_normalize);
        c.validate();
        assert_eq!(HogConfig::default(), c);
    }

    #[test]
    fn feature_len_matches_grid() {
        let c = HogConfig::paper();
        assert_eq!(c.cells_for(48), 6);
        assert_eq!(c.feature_len(48, 48), 6 * 6 * 8);
        // Non-multiple sizes truncate.
        assert_eq!(c.cells_for(47), 5);
    }

    #[test]
    #[should_panic(expected = "multiple of 4")]
    fn validate_rejects_odd_bins() {
        let mut c = HogConfig::paper();
        c.bins = 9;
        c.validate();
    }

    #[test]
    #[should_panic(expected = "cell_size")]
    fn validate_rejects_zero_cell() {
        let mut c = HogConfig::paper();
        c.cell_size = 0;
        c.validate();
    }

    #[test]
    fn hyper_defaults() {
        let h = HyperHogConfig::default();
        assert_eq!(h.dim, 4096);
        assert_eq!(h.sqrt_iters, 6);
        assert_eq!(h.bit_error_rate, 0.0);
        assert_eq!(h.assembly, Assembly::Quantized);
        assert_eq!(h.accumulation, Accumulation::Readout);
        assert_eq!(h.levels, 32);
        assert_eq!(
            h.with_accumulation(Accumulation::RunningAverage)
                .accumulation,
            Accumulation::RunningAverage
        );
        let noisy = h.with_bit_error_rate(0.02);
        assert_eq!(noisy.bit_error_rate, 0.02);
        assert_eq!(HyperHogConfig::with_dim(1024).dim, 1024);
        let st = h.with_assembly(Assembly::Stochastic);
        assert_eq!(st.assembly, Assembly::Stochastic);
    }
}
