//! The float reference HOG extractor.

use hdface_imaging::GrayImage;

use crate::binning::bin_of_angle;
use crate::config::HogConfig;
use crate::features::HogFeatures;

/// Central-difference gradient at `(x, y)` with clamped borders:
/// `((I(x+1,y) − I(x−1,y))/2, (I(x,y+1) − I(x,y−1))/2)`.
///
/// Matches the paper's `Gx = (C₂,₁ − C₀,₁)/2`, `Gy = (C₁,₂ − C₁,₀)/2`
/// on the 3×3 cell around the pixel. Components lie in `[-0.5, 0.5]`.
#[must_use]
pub fn gradient_at(image: &GrayImage, x: usize, y: usize) -> (f64, f64) {
    let xi = x as isize;
    let yi = y as isize;
    let gx =
        (f64::from(image.get_clamped(xi + 1, yi)) - f64::from(image.get_clamped(xi - 1, yi))) / 2.0;
    let gy =
        (f64::from(image.get_clamped(xi, yi + 1)) - f64::from(image.get_clamped(xi, yi - 1))) / 2.0;
    (gx, gy)
}

/// The float reference implementation of the HOG pipeline.
///
/// Gradient magnitude uses the paper's scaled form
/// `√((Gx² + Gy²)/2)` (a uniform `1/√2` of the true magnitude —
/// irrelevant after normalization, and it keeps every intermediate
/// inside the `[-1, 1]` range the stochastic twin requires). Cell
/// histograms divide by cell area so values land in `[0, 0.5]`.
///
/// ```
/// use hdface_hog::{ClassicHog, HogConfig};
/// use hdface_imaging::GrayImage;
///
/// let hog = ClassicHog::new(HogConfig::paper());
/// let img = GrayImage::from_fn(16, 16, |x, _| if x < 8 { 0.0 } else { 1.0 });
/// let f = hog.extract(&img);
/// // The vertical edge produces horizontal gradients: bin 0 (east)
/// // dominates in the cells straddling the edge.
/// assert!(f.get(0, 0, 0) >= 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct ClassicHog {
    config: HogConfig,
}

impl ClassicHog {
    /// Creates an extractor with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see
    /// [`HogConfig::validate`]).
    #[must_use]
    pub fn new(config: HogConfig) -> Self {
        config.validate();
        ClassicHog { config }
    }

    /// The extractor's configuration.
    #[must_use]
    pub fn config(&self) -> &HogConfig {
        &self.config
    }

    /// Extracts HOG features from an image.
    ///
    /// Only whole cells are processed; right/bottom remainder pixels
    /// are ignored (standard HOG cropping behavior).
    #[must_use]
    pub fn extract(&self, image: &GrayImage) -> HogFeatures {
        let c = self.config.cell_size;
        let cells_x = self.config.cells_for(image.width());
        let cells_y = self.config.cells_for(image.height());
        let mut feats = HogFeatures::zeroed(cells_x, cells_y, self.config.bins);
        let cell_area = (c * c) as f64;

        for cy in 0..cells_y {
            for cx in 0..cells_x {
                for py in 0..c {
                    for px in 0..c {
                        let x = cx * c + px;
                        let y = cy * c + py;
                        let (gx, gy) = gradient_at(image, x, y);
                        let mag = ((gx * gx + gy * gy) / 2.0).sqrt();
                        if mag == 0.0 {
                            continue;
                        }
                        let bin = bin_of_angle(gx, gy, self.config.bins);
                        feats.add(cx, cy, bin, mag / cell_area);
                    }
                }
            }
        }

        if self.config.block_normalize {
            feats.block_normalize();
        }
        feats
    }

    /// Extracts and flattens to a plain feature vector — the input
    /// format of the DNN/SVM baselines and the non-HD encoders.
    #[must_use]
    pub fn extract_vec(&self, image: &GrayImage) -> Vec<f64> {
        self.extract(image).into_vec()
    }
}

impl Default for ClassicHog {
    fn default() -> Self {
        Self::new(HogConfig::paper())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gradient_of_ramp_is_constant() {
        // I(x, y) = x/15: Gx = 1/15/2 interior, Gy = 0.
        let img = GrayImage::from_fn(16, 16, |x, _| x as f32 / 15.0);
        let (gx, gy) = gradient_at(&img, 8, 8);
        assert!((gx - 1.0 / 15.0).abs() < 1e-6);
        assert_eq!(gy, 0.0);
    }

    #[test]
    fn gradient_clamps_at_borders() {
        let img = GrayImage::from_fn(4, 4, |x, _| x as f32 / 3.0);
        // At x=0 the backward sample is clamped: (I(1)-I(0))/2.
        let (gx, _) = gradient_at(&img, 0, 2);
        assert!((gx - (1.0 / 3.0) / 2.0).abs() < 1e-6);
    }

    #[test]
    fn flat_image_produces_zero_features() {
        let hog = ClassicHog::default();
        let img = GrayImage::filled(16, 16, 0.5);
        let f = hog.extract(&img);
        assert!(f.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn horizontal_ramp_concentrates_in_east_bin() {
        let hog = ClassicHog::default();
        let img = GrayImage::from_fn(16, 16, |x, _| x as f32 / 15.0);
        let f = hog.extract(&img);
        // Gradient points east (+x): every magnitude in bin 0.
        for cy in 0..f.cells_y() {
            for cx in 0..f.cells_x() {
                let h = f.cell_histogram(cx, cy);
                assert!(h[0] > 0.0, "cell ({cx},{cy}) east bin empty");
                for (b, &v) in h.iter().enumerate().skip(1) {
                    assert_eq!(v, 0.0, "cell ({cx},{cy}) bin {b}");
                }
            }
        }
    }

    #[test]
    fn vertical_ramp_concentrates_in_south_bin() {
        // I increasing with y: Gy > 0 → θ = 90° → bin 2 of 8.
        let hog = ClassicHog::default();
        let img = GrayImage::from_fn(16, 16, |_, y| y as f32 / 15.0);
        let f = hog.extract(&img);
        let h = f.cell_histogram(0, 0);
        assert!(h[2] > 0.0);
        assert_eq!(h[0], 0.0);
    }

    #[test]
    fn opposite_ramps_land_in_opposite_bins() {
        let hog = ClassicHog::default();
        let inc = GrayImage::from_fn(16, 16, |x, _| x as f32 / 15.0);
        let dec = GrayImage::from_fn(16, 16, |x, _| 1.0 - x as f32 / 15.0);
        let fi = hog.extract(&inc);
        let fd = hog.extract(&dec);
        // Signed binning distinguishes east (bin 0) from west (bin 4).
        assert!(fi.get(1, 1, 0) > 0.0);
        assert!(fd.get(1, 1, 4) > 0.0);
        assert_eq!(fi.get(1, 1, 4), 0.0);
        assert_eq!(fd.get(1, 1, 0), 0.0);
    }

    #[test]
    fn histogram_values_bounded_by_half() {
        // Max gradient magnitude is √((0.5² + 0.5²)/2) = 0.5; after
        // dividing by cell area the per-bin sum cannot exceed 0.5.
        let hog = ClassicHog::default();
        let img = GrayImage::from_fn(32, 32, |x, y| ((x + y) % 2) as f32);
        let f = hog.extract(&img);
        for &v in f.as_slice() {
            assert!((0.0..=0.5).contains(&v), "value {v} out of range");
        }
    }

    #[test]
    fn remainder_pixels_are_cropped() {
        let hog = ClassicHog::default();
        let img = GrayImage::new(20, 17);
        let f = hog.extract(&img);
        assert_eq!(f.cells_x(), 2);
        assert_eq!(f.cells_y(), 2);
    }

    #[test]
    fn extract_vec_flattens() {
        let hog = ClassicHog::default();
        let img = GrayImage::new(16, 16);
        assert_eq!(hog.extract_vec(&img).len(), 2 * 2 * 8);
    }

    #[test]
    fn block_normalization_applies_when_enabled() {
        let mut cfg = HogConfig::paper();
        cfg.block_normalize = true;
        let hog = ClassicHog::new(cfg);
        let img = GrayImage::from_fn(32, 32, |x, _| ((x / 3) % 2) as f32);
        let f = hog.extract(&img);
        // Normalized values exceed the raw 0.5 cap check only in norm,
        // but remain ≤ 1.
        for &v in f.as_slice() {
            assert!((0.0..=1.0).contains(&v));
        }
    }
}
