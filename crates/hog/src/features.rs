//! The HOG feature container.

use std::fmt;

/// A grid of per-cell orientation histograms.
///
/// Values are laid out row-major by cell, then by bin:
/// `values[(cy * cells_x + cx) * bins + bin]`. Each value is the sum
/// of gradient magnitudes assigned to that bin divided by the cell
/// area, which keeps every entry inside `[0, 0.5]` — the range the
/// stochastic representation needs.
#[derive(Clone, PartialEq)]
pub struct HogFeatures {
    cells_x: usize,
    cells_y: usize,
    bins: usize,
    values: Vec<f64>,
}

impl HogFeatures {
    /// Creates a zeroed feature grid.
    #[must_use]
    pub fn zeroed(cells_x: usize, cells_y: usize, bins: usize) -> Self {
        HogFeatures {
            cells_x,
            cells_y,
            bins,
            values: vec![0.0; cells_x * cells_y * bins],
        }
    }

    /// Wraps an existing value buffer.
    ///
    /// # Panics
    ///
    /// Panics if the buffer length is not `cells_x · cells_y · bins`.
    #[must_use]
    pub fn from_values(cells_x: usize, cells_y: usize, bins: usize, values: Vec<f64>) -> Self {
        assert_eq!(
            values.len(),
            cells_x * cells_y * bins,
            "value buffer length mismatch"
        );
        HogFeatures {
            cells_x,
            cells_y,
            bins,
            values,
        }
    }

    /// Number of cell columns.
    #[must_use]
    pub fn cells_x(&self) -> usize {
        self.cells_x
    }

    /// Number of cell rows.
    #[must_use]
    pub fn cells_y(&self) -> usize {
        self.cells_y
    }

    /// Number of orientation bins per cell.
    #[must_use]
    pub fn bins(&self) -> usize {
        self.bins
    }

    /// Total number of feature values.
    #[must_use]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// `true` when the grid holds no cells.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Reads one histogram value.
    ///
    /// # Panics
    ///
    /// Panics when any index is out of range.
    #[must_use]
    pub fn get(&self, cx: usize, cy: usize, bin: usize) -> f64 {
        self.values[self.index(cx, cy, bin)]
    }

    /// Writes one histogram value.
    ///
    /// # Panics
    ///
    /// Panics when any index is out of range.
    pub fn set(&mut self, cx: usize, cy: usize, bin: usize, value: f64) {
        let i = self.index(cx, cy, bin);
        self.values[i] = value;
    }

    /// Adds to one histogram value.
    ///
    /// # Panics
    ///
    /// Panics when any index is out of range.
    pub fn add(&mut self, cx: usize, cy: usize, bin: usize, delta: f64) {
        let i = self.index(cx, cy, bin);
        self.values[i] += delta;
    }

    fn index(&self, cx: usize, cy: usize, bin: usize) -> usize {
        assert!(
            cx < self.cells_x && cy < self.cells_y && bin < self.bins,
            "feature index ({cx},{cy},{bin}) out of range"
        );
        (cy * self.cells_x + cx) * self.bins + bin
    }

    /// The flat feature vector (layout documented on the type).
    #[must_use]
    pub fn as_slice(&self) -> &[f64] {
        &self.values
    }

    /// Consumes into the flat feature vector.
    #[must_use]
    pub fn into_vec(self) -> Vec<f64> {
        self.values
    }

    /// One cell's histogram as a slice of `bins` values.
    ///
    /// # Panics
    ///
    /// Panics when the cell coordinate is out of range.
    #[must_use]
    pub fn cell_histogram(&self, cx: usize, cy: usize) -> &[f64] {
        let start = self.index(cx, cy, 0);
        &self.values[start..start + self.bins]
    }

    /// Mean absolute difference to another feature grid — the
    /// fidelity metric of the classic-vs-hyper parity experiments.
    ///
    /// # Panics
    ///
    /// Panics when the grids have different shapes.
    #[must_use]
    pub fn mean_abs_diff(&self, other: &HogFeatures) -> f64 {
        assert_eq!(
            (self.cells_x, self.cells_y, self.bins),
            (other.cells_x, other.cells_y, other.bins),
            "feature grid shapes differ"
        );
        if self.values.is_empty() {
            return 0.0;
        }
        self.values
            .iter()
            .zip(&other.values)
            .map(|(a, b)| (a - b).abs())
            .sum::<f64>()
            / self.values.len() as f64
    }

    /// L2-normalizes each 2×2 block of cells in place (classic HOG
    /// block normalization with stride 1; values are averaged over the
    /// blocks containing each cell so the output length is unchanged).
    pub fn block_normalize(&mut self) {
        if self.cells_x < 2 || self.cells_y < 2 {
            // Single row/column: plain L2 over everything.
            let norm = self.values.iter().map(|v| v * v).sum::<f64>().sqrt();
            if norm > 1e-12 {
                for v in &mut self.values {
                    *v /= norm;
                }
            }
            return;
        }
        let mut out = vec![0.0; self.values.len()];
        let mut counts = vec![0u32; self.values.len()];
        for by in 0..self.cells_y - 1 {
            for bx in 0..self.cells_x - 1 {
                // Norm over the 2×2 block.
                let mut sq = 0.0;
                for (dy, dx) in [(0, 0), (0, 1), (1, 0), (1, 1)] {
                    for b in 0..self.bins {
                        let v = self.get(bx + dx, by + dy, b);
                        sq += v * v;
                    }
                }
                let norm = sq.sqrt().max(1e-12);
                for (dy, dx) in [(0, 0), (0, 1), (1, 0), (1, 1)] {
                    for b in 0..self.bins {
                        let i = self.index(bx + dx, by + dy, b);
                        out[i] += self.values[i] / norm;
                        counts[i] += 1;
                    }
                }
            }
        }
        for (i, v) in out.iter_mut().enumerate() {
            if counts[i] > 0 {
                *v /= f64::from(counts[i]);
            }
        }
        self.values = out;
    }
}

impl fmt::Debug for HogFeatures {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "HogFeatures({}x{} cells, {} bins, mean={:.4})",
            self.cells_x,
            self.cells_y,
            self.bins,
            self.values.iter().sum::<f64>() / self.values.len().max(1) as f64
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_layout() {
        let f = HogFeatures::zeroed(3, 2, 4);
        assert_eq!(f.len(), 24);
        assert_eq!(f.cells_x(), 3);
        assert_eq!(f.cells_y(), 2);
        assert_eq!(f.bins(), 4);
        assert!(!f.is_empty());
    }

    #[test]
    fn get_set_add_roundtrip() {
        let mut f = HogFeatures::zeroed(2, 2, 3);
        f.set(1, 0, 2, 0.5);
        f.add(1, 0, 2, 0.25);
        assert_eq!(f.get(1, 0, 2), 0.75);
        // Row-major layout: (cy * cells_x + cx) * bins + bin.
        assert_eq!(f.as_slice()[3 + 2], 0.75);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        let f = HogFeatures::zeroed(2, 2, 3);
        let _ = f.get(2, 0, 0);
    }

    #[test]
    fn cell_histogram_slices_one_cell() {
        let mut f = HogFeatures::zeroed(2, 1, 2);
        f.set(1, 0, 0, 0.1);
        f.set(1, 0, 1, 0.2);
        assert_eq!(f.cell_histogram(1, 0), &[0.1, 0.2]);
        assert_eq!(f.cell_histogram(0, 0), &[0.0, 0.0]);
    }

    #[test]
    fn mean_abs_diff_is_zero_on_self() {
        let mut f = HogFeatures::zeroed(2, 2, 2);
        f.set(0, 0, 0, 0.3);
        assert_eq!(f.mean_abs_diff(&f.clone()), 0.0);
        let g = HogFeatures::zeroed(2, 2, 2);
        assert!((f.mean_abs_diff(&g) - 0.3 / 8.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "shapes differ")]
    fn mean_abs_diff_rejects_shape_mismatch() {
        let a = HogFeatures::zeroed(2, 2, 2);
        let b = HogFeatures::zeroed(2, 2, 4);
        let _ = a.mean_abs_diff(&b);
    }

    #[test]
    fn from_values_validates_length() {
        let f = HogFeatures::from_values(1, 1, 2, vec![0.1, 0.2]);
        assert_eq!(f.get(0, 0, 1), 0.2);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn from_values_rejects_bad_length() {
        let _ = HogFeatures::from_values(1, 1, 2, vec![0.1]);
    }

    #[test]
    fn block_normalize_bounds_values() {
        let mut f = HogFeatures::zeroed(3, 3, 2);
        for cy in 0..3 {
            for cx in 0..3 {
                for b in 0..2 {
                    f.set(cx, cy, b, 0.4);
                }
            }
        }
        f.block_normalize();
        for &v in f.as_slice() {
            assert!(v > 0.0 && v <= 1.0, "normalized value {v}");
        }
    }

    #[test]
    fn block_normalize_single_cell_grid() {
        let mut f = HogFeatures::from_values(1, 1, 2, vec![3.0, 4.0]);
        f.block_normalize();
        assert!((f.get(0, 0, 0) - 0.6).abs() < 1e-12);
        assert!((f.get(0, 0, 1) - 0.8).abs() < 1e-12);
        // All-zero grid stays zero (no NaN).
        let mut z = HogFeatures::zeroed(1, 1, 2);
        z.block_normalize();
        assert_eq!(z.as_slice(), &[0.0, 0.0]);
    }

    #[test]
    fn into_vec_returns_layout() {
        let f = HogFeatures::from_values(1, 1, 2, vec![0.1, 0.9]);
        assert_eq!(f.into_vec(), vec![0.1, 0.9]);
    }

    #[test]
    fn debug_is_compact() {
        let f = HogFeatures::zeroed(2, 2, 8);
        let s = format!("{f:?}");
        assert!(s.contains("2x2"));
        assert!(s.contains("8 bins"));
    }
}
