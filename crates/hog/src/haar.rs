//! HAAR-like rectangular features — the third classic family of §2
//! ("HOG, HAAR-like feature extraction, and convolution"), computed
//! over integral images exactly as in the Viola–Jones detector the
//! paper's related work compares against.

use hdface_imaging::{GrayImage, IntegralImage};

/// The rectangle arrangements of the classic HAAR set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HaarKind {
    /// Two side-by-side rectangles (vertical edge detector).
    TwoHorizontal,
    /// Two stacked rectangles (horizontal edge detector).
    TwoVertical,
    /// Three side-by-side rectangles (vertical line detector).
    ThreeHorizontal,
    /// Three stacked rectangles (horizontal line detector).
    ThreeVertical,
    /// 2×2 checkerboard (diagonal detector).
    Four,
}

impl HaarKind {
    /// All five kinds.
    pub const ALL: [HaarKind; 5] = [
        HaarKind::TwoHorizontal,
        HaarKind::TwoVertical,
        HaarKind::ThreeHorizontal,
        HaarKind::ThreeVertical,
        HaarKind::Four,
    ];

    /// `(width, height)` granularity the feature footprint must be a
    /// multiple of.
    fn granularity(self) -> (usize, usize) {
        match self {
            HaarKind::TwoHorizontal => (2, 1),
            HaarKind::TwoVertical => (1, 2),
            HaarKind::ThreeHorizontal => (3, 1),
            HaarKind::ThreeVertical => (1, 3),
            HaarKind::Four => (2, 2),
        }
    }
}

/// One HAAR feature: a kind placed at `(x, y)` with footprint
/// `w × h`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct HaarFeature {
    /// Rectangle arrangement.
    pub kind: HaarKind,
    /// Left edge (pixels, window-relative).
    pub x: usize,
    /// Top edge (pixels, window-relative).
    pub y: usize,
    /// Footprint width (multiple of the kind's granularity).
    pub w: usize,
    /// Footprint height.
    pub h: usize,
}

impl HaarFeature {
    /// Evaluates the feature: (white − black) area sums, normalized by
    /// the footprint area so values land in `[-1, 1]`.
    ///
    /// # Panics
    ///
    /// Panics when the footprint exceeds the integral image.
    #[must_use]
    pub fn evaluate(&self, ii: &IntegralImage) -> f64 {
        let (x, y, w, h) = (self.x, self.y, self.w, self.h);
        let area = (w * h) as f64;
        let v = match self.kind {
            HaarKind::TwoHorizontal => {
                let half = w / 2;
                ii.box_sum(x, y, half, h) - ii.box_sum(x + half, y, half, h)
            }
            HaarKind::TwoVertical => {
                let half = h / 2;
                ii.box_sum(x, y, w, half) - ii.box_sum(x, y + half, w, half)
            }
            HaarKind::ThreeHorizontal => {
                // Middle weighted x2 so the kernel is zero-mean
                // (classic Viola-Jones area compensation).
                let third = w / 3;
                ii.box_sum(x, y, third, h) - 2.0 * ii.box_sum(x + third, y, third, h)
                    + ii.box_sum(x + 2 * third, y, third, h)
            }
            HaarKind::ThreeVertical => {
                let third = h / 3;
                ii.box_sum(x, y, w, third) - 2.0 * ii.box_sum(x, y + third, w, third)
                    + ii.box_sum(x, y + 2 * third, w, third)
            }
            HaarKind::Four => {
                let hw = w / 2;
                let hh = h / 2;
                ii.box_sum(x, y, hw, hh) + ii.box_sum(x + hw, y + hh, hw, hh)
                    - ii.box_sum(x + hw, y, hw, hh)
                    - ii.box_sum(x, y + hh, hw, hh)
            }
        };
        v / area
    }
}

/// A fixed bank of HAAR features enumerated over a square window —
/// the feature vector a HAAR-based face classifier consumes.
#[derive(Debug, Clone)]
pub struct HaarBank {
    window: usize,
    features: Vec<HaarFeature>,
}

impl HaarBank {
    /// Enumerates features over a `window × window` frame: every kind,
    /// footprints from `min_size` growing by doubling, positions on a
    /// `stride` grid. The enumeration is deterministic, so banks built
    /// with equal parameters are identical.
    ///
    /// # Panics
    ///
    /// Panics if `window`, `min_size` or `stride` is zero.
    #[must_use]
    pub fn new(window: usize, min_size: usize, stride: usize) -> Self {
        assert!(
            window > 0 && min_size > 0 && stride > 0,
            "parameters must be positive"
        );
        let mut features = Vec::new();
        for kind in HaarKind::ALL {
            let (gx, gy) = kind.granularity();
            let mut size = min_size;
            while size <= window {
                // Round the footprint up to the kind's granularity.
                let w = size.div_ceil(gx) * gx;
                let h = size.div_ceil(gy) * gy;
                if w <= window && h <= window {
                    let mut y = 0;
                    while y + h <= window {
                        let mut x = 0;
                        while x + w <= window {
                            features.push(HaarFeature { kind, x, y, w, h });
                            x += stride;
                        }
                        y += stride;
                    }
                }
                size *= 2;
            }
        }
        HaarBank { window, features }
    }

    /// Number of features in the bank.
    #[must_use]
    pub fn len(&self) -> usize {
        self.features.len()
    }

    /// `true` when the bank is empty (window smaller than
    /// `min_size`).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.features.is_empty()
    }

    /// The enumerated features.
    #[must_use]
    pub fn features(&self) -> &[HaarFeature] {
        &self.features
    }

    /// Window side length the bank was enumerated for.
    #[must_use]
    pub fn window(&self) -> usize {
        self.window
    }

    /// Evaluates the whole bank on a window-sized image.
    ///
    /// # Panics
    ///
    /// Panics when the image is smaller than the bank's window.
    #[must_use]
    pub fn extract(&self, image: &GrayImage) -> Vec<f64> {
        assert!(
            image.width() >= self.window && image.height() >= self.window,
            "image {}x{} smaller than bank window {}",
            image.width(),
            image.height(),
            self.window
        );
        let ii = IntegralImage::new(image);
        self.features.iter().map(|f| f.evaluate(&ii)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_horizontal_detects_vertical_edge() {
        // Left half dark, right half bright.
        let img = GrayImage::from_fn(8, 8, |x, _| if x < 4 { 0.0 } else { 1.0 });
        let ii = IntegralImage::new(&img);
        let f = HaarFeature {
            kind: HaarKind::TwoHorizontal,
            x: 0,
            y: 0,
            w: 8,
            h: 8,
        };
        // white(left)=0, black(right)=32 → (0−32)/64 = −0.5.
        assert!((f.evaluate(&ii) + 0.5).abs() < 1e-9);
    }

    #[test]
    fn two_vertical_detects_horizontal_edge() {
        let img = GrayImage::from_fn(8, 8, |_, y| if y < 4 { 1.0 } else { 0.0 });
        let ii = IntegralImage::new(&img);
        let f = HaarFeature {
            kind: HaarKind::TwoVertical,
            x: 0,
            y: 0,
            w: 8,
            h: 8,
        };
        assert!((f.evaluate(&ii) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn four_rect_detects_checkerboard() {
        let img = GrayImage::from_fn(8, 8, |x, y| if (x < 4) == (y < 4) { 1.0 } else { 0.0 });
        let ii = IntegralImage::new(&img);
        let f = HaarFeature {
            kind: HaarKind::Four,
            x: 0,
            y: 0,
            w: 8,
            h: 8,
        };
        // Diagonal quadrants bright: (16+16−0−0)/64 = 0.5.
        assert!((f.evaluate(&ii) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn constant_images_score_zero_everywhere() {
        let bank = HaarBank::new(16, 4, 4);
        let f = bank.extract(&GrayImage::filled(16, 16, 0.7));
        assert!(f.iter().all(|v| v.abs() < 1e-9));
    }

    #[test]
    fn bank_enumeration_is_deterministic_and_nonempty() {
        let a = HaarBank::new(32, 8, 8);
        let b = HaarBank::new(32, 8, 8);
        assert_eq!(a.features(), b.features());
        assert!(!a.is_empty());
        assert_eq!(a.window(), 32);
        // All five kinds appear.
        for kind in HaarKind::ALL {
            assert!(
                a.features().iter().any(|f| f.kind == kind),
                "{kind:?} missing"
            );
        }
    }

    #[test]
    fn values_are_bounded() {
        let bank = HaarBank::new(16, 4, 4);
        let img = GrayImage::from_fn(16, 16, |x, y| ((x * 7 + y * 3) % 10) as f32 / 9.0);
        for v in bank.extract(&img) {
            assert!((-1.0..=1.0).contains(&v), "value {v}");
        }
    }

    #[test]
    #[should_panic(expected = "smaller than bank window")]
    fn undersized_image_panics() {
        let bank = HaarBank::new(16, 4, 4);
        let _ = bank.extract(&GrayImage::new(8, 8));
    }
}
