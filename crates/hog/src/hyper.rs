//! The hyperdimensional HOG extractor (paper §4.3).
//!
//! Every stage runs on stochastic binary hypervectors:
//!
//! 1. **Pixel encoding** — each normalized pixel `v ∈ [0, 1]` becomes
//!    `V_v` by vector quantization between the basis (white) and an
//!    orthogonal vector (black) — exactly the stochastic construction,
//!    since `δ(V_0, V₁) = 0` makes the two extremes nearly orthogonal
//!    as §3 of the paper describes.
//! 2. **Gradient** — `V_Gx = 0.5·V_C(x+1,y) ⊕ 0.5·(−V_C(x−1,y))` and
//!    likewise for `Gy` (halved central differences).
//! 3. **Magnitude** — `V_(Gx²+Gy²)/2` by stochastic squaring and a
//!    halved addition, then a binary-search square root.
//! 4. **Angle bin** — quadrant localization from the statistical signs
//!    of `Gx`, `Gy`, then monotone-tan comparisons against precomputed
//!    `V_tanθᵢ` / `V_cotθᵢ` hypervectors via the paper's
//!    `α = (σ|G_y| − r|G_x|)/2` construction. No arctangent anywhere.
//! 5. **Histogram accumulation** — per-(cell, bin) running weighted
//!    averages, corrected by a precomputed `V_count/area` ratio
//!    multiplication so slot values equal (sum of magnitudes ÷ cell
//!    area), matching the classic extractor bit-for-bit in
//!    expectation.
//! 6. **Feature bundling** — each slot value is bound (XOR) to a
//!    random slot key and the bound slots are majority-bundled into a
//!    single feature hypervector ready for HDC learning — "there is no
//!    need for HDC encoding to map data points into high-dimension".

use std::error::Error;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{RwLock, RwLockReadGuard};

use hdface_hdc::{BitSlicedBundler, BitVector, HdcRng, SeedableRng};
use hdface_imaging::GrayImage;
use hdface_stochastic::{derive_coord_seed, Shv, StochasticContext, StochasticError};

use crate::binning::BinBoundaries;
use crate::config::HyperHogConfig;
use crate::features::HogFeatures;

/// Errors raised by the hyperdimensional extractor.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum HyperHogError {
    /// The image is smaller than one cell, so no features exist.
    NoCells {
        /// Image width supplied.
        width: usize,
        /// Image height supplied.
        height: usize,
        /// Configured cell size.
        cell_size: usize,
    },
    /// An underlying stochastic arithmetic failure (indicates a bug:
    /// all pipeline values are range-checked by construction).
    Stochastic(StochasticError),
}

impl fmt::Display for HyperHogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HyperHogError::NoCells {
                width,
                height,
                cell_size,
            } => write!(
                f,
                "image {width}x{height} is smaller than one {cell_size}x{cell_size} cell"
            ),
            HyperHogError::Stochastic(e) => write!(f, "stochastic arithmetic failed: {e}"),
        }
    }
}

impl Error for HyperHogError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            HyperHogError::Stochastic(e) => Some(e),
            HyperHogError::NoCells { .. } => None,
        }
    }
}

impl From<StochasticError> for HyperHogError {
    fn from(e: StochasticError) -> Self {
        HyperHogError::Stochastic(e)
    }
}

/// One (cell, bin) histogram slot: the stochastic hypervector plus
/// the scalar read-out that produced it (kept so downstream stages do
/// not pay redundant decode noise).
#[derive(Debug, Clone)]
struct SlotValue {
    shv: Shv,
    value: f64,
}

/// Per-worker mutable extraction state: the stochastic-mask and
/// error-injection RNG streams.
///
/// Everything value-defining (basis, codebooks, slot keys) lives in
/// the shared, read-only [`HyperHog`]; a `HogScratch` is the only
/// state a worker mutates while scoring, so one extractor can serve
/// any number of threads through
/// [`HyperHog::extract_with`]. Build one per work item with
/// [`HyperHog::scratch_for_stream`] — the resulting feature depends
/// only on the stream number, never on which thread ran it.
#[derive(Debug)]
pub struct HogScratch {
    mask_rng: HdcRng,
    noise_rng: HdcRng,
    /// Reusable bit-sliced bundling kernel: reset per window, so the
    /// steady-state bind-and-accumulate loop never allocates.
    bundler: BitSlicedBundler,
}

impl HogScratch {
    fn new(mask_rng: HdcRng, noise_rng: HdcRng) -> Self {
        HogScratch {
            mask_rng,
            noise_rng,
            bundler: BitSlicedBundler::new(0),
        }
    }
}

/// A precomputed comparison hypervector for one bin boundary in one
/// quadrant parity.
#[derive(Debug, Clone)]
struct BoundaryCode {
    /// The boundary tangent value `t` being compared against.
    t: f64,
    /// Encodes `t` when `use_cot` is false, `1/t` otherwise (so the
    /// encoded scalar always lies inside `[-1, 1]`).
    shv: Shv,
    use_cot: bool,
}

/// The hyperdimensional HOG extractor.
///
/// Construction precomputes the boundary-tangent codebook, the
/// count-ratio codebook and nothing else; per-image work happens in
/// [`extract`](Self::extract) and needs `&mut self` because stochastic
/// masks are drawn from the context RNG.
///
/// ```
/// use hdface_hog::{HyperHog, HyperHogConfig};
/// use hdface_imaging::GrayImage;
///
/// # fn main() -> Result<(), hdface_hog::HyperHogError> {
/// let mut hog = HyperHog::new(HyperHogConfig::with_dim(2048), 7);
/// let img = GrayImage::from_fn(16, 16, |x, _| (x as f32) / 15.0);
/// let feature = hog.extract(&img)?;
/// assert_eq!(feature.dim(), 2048);
/// # Ok(())
/// # }
/// ```
pub struct HyperHog {
    config: HyperHogConfig,
    ctx: StochasticContext,
    boundaries: BinBoundaries,
    /// Boundary codes for even quadrants (0, 2), increasing angle.
    even_codes: Vec<BoundaryCode>,
    /// Boundary codes for odd quadrants (1, 3), increasing angle.
    odd_codes: Vec<BoundaryCode>,
    /// `V_{k/c²}` for `k = 0..=c²` (count-ratio correction).
    ratio_codes: Vec<Shv>,
    /// Correlative level codebook spanning the slot value range
    /// `[0, 0.5]`: `δ(levelᵢ, levelⱼ) = 1 − |i−j|/(L−1)`.
    level_codes: Vec<BitVector>,
    /// Slot binding keys, grown on demand behind a read-write lock so
    /// any shared-state extraction can warm the cache for everyone
    /// (each key derived independently from `key_seed` and its index,
    /// so key identity never depends on generation order — parallel
    /// workers and the original extractor always agree).
    slot_keys: RwLock<Vec<BitVector>>,
    /// Extractions that found every slot key already cached.
    key_warm: AtomicU64,
    /// Extractions that had to derive and install missing slot keys.
    key_cold: AtomicU64,
    key_seed: u64,
    noise_rng: HdcRng,
}

/// Salt separating the position-pure per-pixel encoding streams of
/// level-cache extraction from the per-cell streams.
const PIXEL_STREAM_SALT: u64 = 0x85eb_ca6b_9f4a_7c15;
/// Salts for the per-cell stochastic-mask / error-injection streams.
const CELL_MASK_SALT: u64 = 0x1656_67b1_9e37_79f9;
const CELL_NOISE_SALT: u64 = 0x2545_f491_4f6c_dd1d;

/// One cached (cell, bin) histogram slot of a pyramid level:
/// assembly-resolved bits ready for slot-key binding, plus the scalar
/// read-out for diagnostics.
#[derive(Debug, Clone)]
pub struct CachedSlot {
    bits: BitVector,
    value: f64,
}

impl CachedSlot {
    /// The assembly-resolved slot hypervector (quantized level code or
    /// stochastic value vector, per the extractor configuration).
    #[must_use]
    pub fn bits(&self) -> &BitVector {
        &self.bits
    }

    /// The decoded scalar slot value (sum of magnitudes ÷ cell area).
    #[must_use]
    pub fn value(&self) -> f64 {
        self.value
    }

    /// Rebuilds the slot around replacement bits, keeping the scalar
    /// read-out — the hook the runtime fault-injection layer uses to
    /// flip bits in cached cells without re-deriving their values.
    #[must_use]
    pub fn with_bits(&self, bits: BitVector) -> Self {
        CachedSlot {
            bits,
            value: self.value,
        }
    }
}

/// All per-(cell, bin) hypervectors of one pyramid level, computed
/// once and shared read-only across every window that overlaps the
/// level.
///
/// Built by [`HyperHog::build_level_cache`] (serially) or assembled
/// with [`LevelCellCache::from_cells`] from
/// [`HyperHog::compute_level_cell`] results computed in any order or
/// on any thread — cells are position-pure, so the cache contents are
/// identical either way. Windows whose geometry is cell-aligned
/// assemble their feature via [`HyperHog::extract_from_cache`].
#[derive(Debug, Clone)]
pub struct LevelCellCache {
    cells_x: usize,
    cells_y: usize,
    bins: usize,
    dim: usize,
    /// Row-major `(cy * cells_x + cx) * bins + bin` slot layout.
    slots: Vec<CachedSlot>,
}

impl LevelCellCache {
    /// Assembles a cache from per-cell results in row-major cell order
    /// (the order [`HyperHog::build_level_cache`] produces, however
    /// the cells were actually computed).
    ///
    /// # Panics
    ///
    /// Panics if the number of cells or the per-cell bin count does
    /// not match the grid shape.
    #[must_use]
    pub fn from_cells(
        cells_x: usize,
        cells_y: usize,
        bins: usize,
        dim: usize,
        cells: Vec<Vec<CachedSlot>>,
    ) -> Self {
        assert_eq!(cells.len(), cells_x * cells_y, "cell count mismatch");
        let mut slots = Vec::with_capacity(cells_x * cells_y * bins);
        for cell in cells {
            assert_eq!(cell.len(), bins, "per-cell bin count mismatch");
            slots.extend(cell);
        }
        LevelCellCache {
            cells_x,
            cells_y,
            bins,
            dim,
            slots,
        }
    }

    /// Cells across the level.
    #[must_use]
    pub fn cells_x(&self) -> usize {
        self.cells_x
    }

    /// Cells down the level.
    #[must_use]
    pub fn cells_y(&self) -> usize {
        self.cells_y
    }

    /// Orientation bins per cell.
    #[must_use]
    pub fn bins(&self) -> usize {
        self.bins
    }

    /// Hypervector dimensionality of the cached slots.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The cached slot of `(cx, cy, bin)`.
    #[must_use]
    pub fn slot(&self, cx: usize, cy: usize, bin: usize) -> &CachedSlot {
        &self.slots[(cy * self.cells_x + cx) * self.bins + bin]
    }
}

/// Builds a correlative level codebook: a random low endpoint, a
/// designated random half of the dimensions, and level `i` flips the
/// first `i/(L−1)` fraction of that half — so similarity falls off
/// linearly with level distance and equal values map to identical
/// vectors.
fn build_level_codes(dim: usize, levels: usize, rng: &mut HdcRng) -> Vec<BitVector> {
    let levels = levels.max(2);
    let lo = BitVector::random(dim, rng);
    // Flip set: a fixed random half of the dimensions, in a fixed
    // random order.
    let mut order: Vec<usize> = (0..dim).collect();
    for i in (1..dim).rev() {
        let j = rand::RngExt::random_range(rng, 0..=i);
        order.swap(i, j);
    }
    let flip_set = &order[..dim / 2];
    (0..levels)
        .map(|lvl| {
            let frac = lvl as f64 / (levels - 1) as f64;
            let n_flip = (frac * flip_set.len() as f64).round() as usize;
            let mut v = lo.clone();
            for &idx in &flip_set[..n_flip] {
                v.flip(idx);
            }
            v
        })
        .collect()
}

impl Clone for HyperHog {
    /// Clones the feature-space-defining state (basis, boundary and
    /// ratio codebooks, level codes, already-generated slot keys).
    /// RNG streams restart deterministically; see
    /// [`HyperHog::clone_for_worker`] for per-worker streams.
    fn clone(&self) -> Self {
        HyperHog {
            config: self.config,
            ctx: self.ctx.clone(),
            boundaries: self.boundaries.clone(),
            even_codes: self.even_codes.clone(),
            odd_codes: self.odd_codes.clone(),
            ratio_codes: self.ratio_codes.clone(),
            level_codes: self.level_codes.clone(),
            slot_keys: RwLock::new(
                self.slot_keys
                    .read()
                    .expect("slot-key lock poisoned")
                    .clone(),
            ),
            key_warm: AtomicU64::new(0),
            key_cold: AtomicU64::new(0),
            key_seed: self.key_seed,
            noise_rng: HdcRng::seed_from_u64(0x6433_73e2_643c_9869),
        }
    }
}

impl HyperHog {
    /// Creates an extractor; `seed` fixes the basis, every stochastic
    /// mask, the slot keys and the error-injection stream.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid ([`HogConfig::validate`])
    /// or `dim == 0`.
    ///
    /// [`HogConfig::validate`]: crate::HogConfig::validate
    #[must_use]
    pub fn new(config: HyperHogConfig, seed: u64) -> Self {
        config.hog.validate();
        let mut ctx = StochasticContext::new(config.dim, seed);
        let boundaries = BinBoundaries::new(config.hog.bins);

        let mut make_code = |t: f64| -> BoundaryCode {
            let use_cot = t.abs() > 1.0;
            let value = if use_cot { 1.0 / t } else { t };
            let shv = ctx.encode(value).expect("boundary value in range");
            BoundaryCode { t, shv, use_cot }
        };
        let even_codes: Vec<BoundaryCode> = boundaries
            .tangents()
            .to_vec()
            .iter()
            .map(|&(r, _)| make_code(r))
            .collect();
        // Odd quadrants compare against tangents −1/r (the same
        // boundary angles shifted by π/2).
        let odd_codes: Vec<BoundaryCode> = boundaries
            .tangents()
            .to_vec()
            .iter()
            .map(|&(r, _)| make_code(-1.0 / r))
            .collect();

        let area = config.hog.cell_size * config.hog.cell_size;
        let ratio_codes = (0..=area)
            .map(|k| ctx.encode(k as f64 / area as f64).expect("ratio in [0, 1]"))
            .collect();

        let key_seed = seed ^ 0x9e37_79b9_7f4a_7c15;
        let mut code_rng = HdcRng::seed_from_u64(key_seed);
        let level_codes = build_level_codes(config.dim, config.levels, &mut code_rng);

        HyperHog {
            config,
            ctx,
            boundaries,
            even_codes,
            odd_codes,
            ratio_codes,
            level_codes,
            slot_keys: RwLock::new(Vec::new()),
            key_warm: AtomicU64::new(0),
            key_cold: AtomicU64::new(0),
            key_seed,
            noise_rng: HdcRng::seed_from_u64(seed ^ 0x6a09_e667_f3bc_c909),
        }
    }

    /// Upper edge of the slot-value quantization range. Slot values
    /// are magnitude sums divided by cell area; on natural-statistics
    /// images they concentrate well below the theoretical 0.5 maximum,
    /// so the codebook spans `[0, 0.25]` (values above saturate to the
    /// top level) to spend its resolution where the data lives.
    const LEVEL_RANGE_MAX: f64 = 0.25;

    /// Maps a slot scalar to its correlative level vector (the scalar
    /// is the popcount read-out produced during accumulation).
    fn quantize_slot(&self, value: f64) -> BitVector {
        self.quantize_slot_ref(value).clone()
    }

    /// Borrowing form of [`quantize_slot`](Self::quantize_slot): the
    /// bundling hot path binds the codebook entry in place, so it
    /// never needs an owned copy.
    fn quantize_slot_ref(&self, value: f64) -> &BitVector {
        let v = value.clamp(0.0, Self::LEVEL_RANGE_MAX);
        let levels = self.level_codes.len();
        let idx = ((v / Self::LEVEL_RANGE_MAX) * (levels - 1) as f64).round() as usize;
        &self.level_codes[idx.min(levels - 1)]
    }

    /// The extractor configuration.
    #[must_use]
    pub fn config(&self) -> &HyperHogConfig {
        &self.config
    }

    /// The stochastic context (exposes the basis for decoding
    /// experiments).
    #[must_use]
    pub fn context(&self) -> &StochasticContext {
        &self.ctx
    }

    /// Clones the extractor for a parallel worker: basis, codebooks
    /// and slot keys are shared bit-for-bit (so features from all
    /// workers live in the same space), while the stochastic-mask and
    /// error-injection RNG streams are re-seeded per `stream` so
    /// workers draw independent noise.
    #[must_use]
    pub fn clone_for_worker(&self, stream: u64) -> Self {
        let mut worker = self.clone();
        worker
            .ctx
            .reseed_masks(stream.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ 0x5bf0_3635);
        worker.noise_rng =
            HdcRng::seed_from_u64(stream.wrapping_mul(0xc2b2_ae3d_27d4_eb4f) ^ 0x27d4);
        worker
    }

    /// Builds per-worker scratch state for `stream` without cloning
    /// the extractor. The RNG streams match
    /// [`clone_for_worker`](Self::clone_for_worker) with the same
    /// `stream`, so `hog.scratch_for_stream(s)` +
    /// [`extract_with`](Self::extract_with) reproduces
    /// `hog.clone_for_worker(s).extract(..)` bit-for-bit (provided the
    /// shared extractor's slot-key cache covers the image, which
    /// [`prepare_for_image`](Self::prepare_for_image) guarantees; an
    /// uncached key is derived on the fly to the same bits).
    #[must_use]
    pub fn scratch_for_stream(&self, stream: u64) -> HogScratch {
        HogScratch::new(
            HdcRng::seed_from_u64(stream.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ 0x5bf0_3635),
            HdcRng::seed_from_u64(stream.wrapping_mul(0xc2b2_ae3d_27d4_eb4f) ^ 0x27d4),
        )
    }

    /// Injects the configured bit-error rate into a hypervector
    /// (identity when the rate is zero), drawing noise from the
    /// scratch stream.
    fn corrupt_with(&self, v: Shv, noise_rng: &mut HdcRng) -> Shv {
        if self.config.bit_error_rate <= 0.0 {
            return v;
        }
        let noisy = v
            .as_bits()
            .with_bit_errors(self.config.bit_error_rate, noise_rng)
            .expect("rate validated by config");
        Shv::from_bits(noisy)
    }

    /// Encodes every pixel of the image as a stochastic hypervector
    /// (the "base hypervector generation" stage).
    fn encode_pixels_with(
        &self,
        image: &GrayImage,
        scratch: &mut HogScratch,
    ) -> Result<Vec<Shv>, StochasticError> {
        let mut out = Vec::with_capacity(image.width() * image.height());
        for y in 0..image.height() {
            for x in 0..image.width() {
                let v = f64::from(image.get(x, y)).clamp(0.0, 1.0);
                let enc = self.ctx.encode_with(v, &mut scratch.mask_rng)?;
                out.push(self.corrupt_with(enc, &mut scratch.noise_rng));
            }
        }
        Ok(out)
    }

    /// Decides `Gy/Gx > t` for one boundary code using only
    /// hypervector operations plus sign popcounts.
    fn tan_exceeds_with(
        &self,
        gx: &Shv,
        gy: &Shv,
        gx_non_neg: bool,
        code_even: bool,
        index: usize,
        scratch: &mut HogScratch,
    ) -> Result<bool, StochasticError> {
        let code = if code_even {
            &self.even_codes[index]
        } else {
            &self.odd_codes[index]
        };
        if code.use_cot {
            // α = (Gy·(1/t) − Gx)/2 ; sign(Gy − t·Gx) = sign(t)·sign(α).
            let prod = self.ctx.mul(&code.shv, gy)?;
            let alpha =
                self.ctx
                    .weighted_average_with(&prod, &gx.negated(), 0.5, &mut scratch.mask_rng)?;
            let alpha_pos = self.ctx.is_non_negative(&alpha)?;
            Ok((alpha_pos == (code.t >= 0.0)) == gx_non_neg)
        } else {
            // α = (Gy − t·Gx)/2 ; Gy/Gx > t ⟺ sign(α) = sign(Gx).
            let prod = self.ctx.mul(&code.shv, gx)?;
            let alpha =
                self.ctx
                    .weighted_average_with(gy, &prod.negated(), 0.5, &mut scratch.mask_rng)?;
            let alpha_pos = self.ctx.is_non_negative(&alpha)?;
            Ok(alpha_pos == gx_non_neg)
        }
    }

    /// The per-pixel gradient → magnitude → angle-bin pipeline over
    /// one cell whose top-left pixel is `(x0, y0)`, accumulating into
    /// the cell's per-bin state (`sums`/`means`/`counts` are
    /// `bins`-long slices). `at` resolves (possibly out-of-bounds)
    /// absolute pixel coordinates to encoded pixel hypervectors.
    ///
    /// Factored out so the per-window path
    /// ([`extract_slots_with`](Self::extract_slots_with)) and the
    /// level-cache path
    /// ([`compute_level_cell`](Self::compute_level_cell)) run the
    /// identical arithmetic — RNG draw order included — over
    /// different pixel sources.
    #[allow(clippy::too_many_arguments)]
    fn cell_pass<'p, F>(
        &self,
        at: &F,
        x0: usize,
        y0: usize,
        sums: &mut [f64],
        means: &mut [Option<Shv>],
        counts: &mut [usize],
        scratch: &mut HogScratch,
    ) -> Result<(), HyperHogError>
    where
        F: Fn(isize, isize) -> &'p Shv,
    {
        let c = self.config.hog.cell_size;
        let readout = self.config.accumulation == crate::config::Accumulation::Readout;
        for py in 0..c {
            for px in 0..c {
                let x = (x0 + px) as isize;
                let y = (y0 + py) as isize;

                // Gradient: halved central differences.
                let right = at(x + 1, y);
                let left = at(x - 1, y);
                let down = at(x, y + 1);
                let up = at(x, y - 1);
                let gx = self
                    .ctx
                    .sub_halved_with(right, left, &mut scratch.mask_rng)?;
                let gy = self.ctx.sub_halved_with(down, up, &mut scratch.mask_rng)?;

                // Magnitude: √((Gx² + Gy²)/2).
                let gx2 = self.ctx.square_with(&gx, &mut scratch.mask_rng)?;
                let gy2 = self.ctx.square_with(&gy, &mut scratch.mask_rng)?;
                let msq = self
                    .ctx
                    .add_halved_with(&gx2, &gy2, &mut scratch.mask_rng)?;
                let mag = self.ctx.sqrt_with_iters_rng(
                    &msq,
                    self.config.sqrt_iters,
                    &mut scratch.mask_rng,
                )?;
                let mag = self.corrupt_with(mag, &mut scratch.noise_rng);

                // Angle bin: quadrant + tan comparisons.
                let gx_pos = self.ctx.is_non_negative(&gx)?;
                let gy_pos = self.ctx.is_non_negative(&gy)?;
                let quadrant = crate::binning::quadrant_of(gx_pos, gy_pos);
                let even = quadrant.is_multiple_of(2);
                let n_bounds = self.boundaries.tangents().len();
                let mut in_q = 0;
                for i in 0..n_bounds {
                    if self.tan_exceeds_with(&gx, &gy, gx_pos, even, i, scratch)? {
                        in_q = i + 1;
                    } else {
                        break;
                    }
                }
                let bin = self.boundaries.global_bin(quadrant, in_q);

                // Histogram accumulation.
                let count = counts[bin];
                if readout {
                    // Popcount read-out: one decode per pixel, scalar
                    // summation.
                    sums[bin] += self.ctx.decode(&mag)?.max(0.0);
                } else {
                    let new_mean = match &means[bin] {
                        None => mag,
                        Some(prev) => {
                            let wprev = count as f64 / (count + 1) as f64;
                            self.ctx.weighted_average_with(
                                prev,
                                &mag,
                                wprev,
                                &mut scratch.mask_rng,
                            )?
                        }
                    };
                    means[bin] = Some(new_mean);
                }
                counts[bin] = count + 1;
            }
        }
        Ok(())
    }

    /// Runs the full per-pixel pipeline and accumulates per-slot
    /// histogram values; returns the slot values along with the grid
    /// shape.
    fn extract_slots_with(
        &self,
        image: &GrayImage,
        scratch: &mut HogScratch,
    ) -> Result<(Vec<SlotValue>, usize, usize), HyperHogError> {
        let c = self.config.hog.cell_size;
        let cells_x = self.config.hog.cells_for(image.width());
        let cells_y = self.config.hog.cells_for(image.height());
        if cells_x == 0 || cells_y == 0 {
            return Err(HyperHogError::NoCells {
                width: image.width(),
                height: image.height(),
                cell_size: c,
            });
        }
        let bins = self.config.hog.bins;
        let pixels = self.encode_pixels_with(image, scratch)?;
        let w = image.width();
        let h = image.height();
        let at = |x: isize, y: isize| -> &Shv {
            let cx = x.clamp(0, w as isize - 1) as usize;
            let cy = y.clamp(0, h as isize - 1) as usize;
            &pixels[cy * w + cx]
        };

        // Per-slot accumulation state: running hypervector mean (for
        // the RunningAverage mode) and scalar magnitude sum (for the
        // Readout mode).
        let mut means: Vec<Option<Shv>> = vec![None; cells_x * cells_y * bins];
        let mut sums: Vec<f64> = vec![0.0; cells_x * cells_y * bins];
        let mut counts: Vec<usize> = vec![0; cells_x * cells_y * bins];
        let readout = self.config.accumulation == crate::config::Accumulation::Readout;

        for cy in 0..cells_y {
            for cx in 0..cells_x {
                let base = (cy * cells_x + cx) * bins;
                self.cell_pass(
                    &at,
                    cx * c,
                    cy * c,
                    &mut sums[base..base + bins],
                    &mut means[base..base + bins],
                    &mut counts[base..base + bins],
                    scratch,
                )?;
            }
        }

        let area = (c * c) as f64;
        let mut slots = Vec::with_capacity(means.len());
        if readout {
            // Slot value = Σ magnitudes / cell area, encoded once. The
            // already-known scalar rides along so later stages do not
            // pay a redundant decode's worth of noise.
            for sum in sums {
                let value = (sum / area).clamp(0.0, 1.0);
                let encoded = self.ctx.encode_with(value, &mut scratch.mask_rng)?;
                let shv = self.corrupt_with(encoded, &mut scratch.noise_rng);
                slots.push(SlotValue { shv, value });
            }
        } else {
            // Count-ratio correction: slot value = mean ⊗ V_{count/area}.
            let zero = self.ctx.encode_with(0.0, &mut scratch.mask_rng)?;
            for (mean, count) in means.into_iter().zip(counts) {
                let shv = match mean {
                    None => zero.clone(),
                    Some(m) => self.ctx.mul(&m, &self.ratio_codes[count])?,
                };
                let shv = self.corrupt_with(shv, &mut scratch.noise_rng);
                // Pure-HD mode: the value is only accessible through a
                // decode.
                let value = self.ctx.decode(&shv)?;
                slots.push(SlotValue { shv, value });
            }
        }
        Ok((slots, cells_x, cells_y))
    }

    /// Number of histogram slots an image of the given size produces
    /// (zero when the image is smaller than one cell).
    #[must_use]
    pub fn slots_for(&self, width: usize, height: usize) -> usize {
        self.config.hog.cells_for(width) * self.config.hog.cells_for(height) * self.config.hog.bins
    }

    /// Pre-generates the slot-key cache for images up to the given
    /// size, so subsequent shared-state extraction
    /// ([`extract_with`](Self::extract_with)) never has to re-derive a
    /// key. Idempotent; keys are identity-stable regardless of
    /// generation order. Does not count toward
    /// [`key_cache_stats`](Self::key_cache_stats) — it is a warm-up,
    /// not a lookup.
    pub fn prepare_for_image(&self, width: usize, height: usize) {
        let n = self.slots_for(width, height);
        if self.slot_keys.read().expect("slot-key lock poisoned").len() < n {
            self.grow_keys(n);
        }
    }

    /// Grows the shared slot-key cache to at least `n` keys.
    fn grow_keys(&self, n: usize) {
        let mut keys = self.slot_keys.write().expect("slot-key lock poisoned");
        while keys.len() < n {
            let i = keys.len() as u64;
            keys.push(Self::derive_slot_key(self.key_seed, i, self.config.dim));
        }
    }

    /// Read access to at least the first `n` slot keys. A warm lookup
    /// finds them all cached; a cold one derives and installs the
    /// missing keys first (so the *next* same-geometry extraction is
    /// warm, from any thread). Key identity depends only on
    /// `(key_seed, index)`, so growth order is irrelevant.
    fn slot_keys_for(&self, n: usize) -> RwLockReadGuard<'_, Vec<BitVector>> {
        {
            let keys = self.slot_keys.read().expect("slot-key lock poisoned");
            if keys.len() >= n {
                self.key_warm.fetch_add(1, Ordering::Relaxed);
                return keys;
            }
        }
        self.grow_keys(n);
        self.key_cold.fetch_add(1, Ordering::Relaxed);
        self.slot_keys.read().expect("slot-key lock poisoned")
    }

    /// Cumulative `(warm, cold)` slot-key lookups: warm extractions
    /// found every key already cached, cold ones had to derive and
    /// install keys. The split a serving layer should watch — steady
    /// traffic at fixed image dimensions must be all-warm after the
    /// first request.
    #[must_use]
    pub fn key_cache_stats(&self) -> (u64, u64) {
        (
            self.key_warm.load(Ordering::Relaxed),
            self.key_cold.load(Ordering::Relaxed),
        )
    }

    /// Derives the binding key of slot `i` from the extractor seed.
    /// Each key depends only on `(key_seed, i)`, never on generation
    /// order, so cached and freshly-derived keys always agree.
    fn derive_slot_key(key_seed: u64, i: u64, dim: usize) -> BitVector {
        let mut rng =
            HdcRng::seed_from_u64(key_seed ^ i.wrapping_mul(0xff51_afd7_ed55_8ccd).wrapping_add(1));
        BitVector::random(dim, &mut rng)
    }

    /// Extracts the decoded per-(cell, bin) histogram — the parity
    /// view used to compare against [`ClassicHog`].
    ///
    /// # Errors
    ///
    /// Returns [`HyperHogError::NoCells`] when the image is smaller
    /// than one cell.
    ///
    /// [`ClassicHog`]: crate::ClassicHog
    pub fn extract_histogram(&mut self, image: &GrayImage) -> Result<HogFeatures, HyperHogError> {
        let mut scratch = self.take_own_scratch();
        let result = self.extract_histogram_with(image, &mut scratch);
        self.restore_own_scratch(scratch);
        result
    }

    /// [`extract_histogram`](Self::extract_histogram) against the
    /// shared read-only extractor state, drawing all randomness from
    /// `scratch`.
    ///
    /// # Errors
    ///
    /// Returns [`HyperHogError::NoCells`] when the image is smaller
    /// than one cell.
    pub fn extract_histogram_with(
        &self,
        image: &GrayImage,
        scratch: &mut HogScratch,
    ) -> Result<HogFeatures, HyperHogError> {
        let (slots, cells_x, cells_y) = self.extract_slots_with(image, scratch)?;
        let bins = self.config.hog.bins;
        let mut feats = HogFeatures::zeroed(cells_x, cells_y, bins);
        for (i, slot) in slots.iter().enumerate() {
            let bin = i % bins;
            let cell = i / bins;
            feats.set(cell % cells_x, cell / cells_x, bin, slot.value);
        }
        Ok(feats)
    }

    /// Moves the extractor-owned RNG streams out into a scratch so the
    /// legacy `&mut self` entry points can delegate to the shared-state
    /// implementations while consuming the exact same streams.
    fn take_own_scratch(&mut self) -> HogScratch {
        HogScratch::new(
            std::mem::replace(self.ctx.rng_mut(), HdcRng::seed_from_u64(0)),
            std::mem::replace(&mut self.noise_rng, HdcRng::seed_from_u64(0)),
        )
    }

    /// Puts the extractor-owned RNG streams back after delegation.
    fn restore_own_scratch(&mut self, scratch: HogScratch) {
        *self.ctx.rng_mut() = scratch.mask_rng;
        self.noise_rng = scratch.noise_rng;
    }

    /// Extracts the bundled feature hypervector: every slot value
    /// bound to its slot key, majority-bundled — the input the HDC
    /// classifier consumes directly.
    ///
    /// # Errors
    ///
    /// Returns [`HyperHogError::NoCells`] when the image is smaller
    /// than one cell.
    pub fn extract(&mut self, image: &GrayImage) -> Result<BitVector, HyperHogError> {
        // Grow the key cache up front (the shared-state path cannot),
        // then delegate on the extractor's own RNG streams.
        self.prepare_for_image(image.width(), image.height());
        let mut scratch = self.take_own_scratch();
        let result = self.extract_with(image, &mut scratch);
        self.restore_own_scratch(scratch);
        result
    }

    /// [`extract`](Self::extract) against the shared read-only
    /// extractor state: all mutation happens in `scratch`, so any
    /// number of workers can extract concurrently from one `&HyperHog`.
    /// The result is a pure function of `(extractor, image, scratch
    /// streams)` — identical no matter which thread runs it.
    ///
    /// Slot keys missing from the shared cache are derived once and
    /// installed for everyone (a "cold" lookup; see
    /// [`key_cache_stats`](Self::key_cache_stats)), so repeated
    /// extraction at the same geometry never re-derives keys.
    ///
    /// # Errors
    ///
    /// Returns [`HyperHogError::NoCells`] when the image is smaller
    /// than one cell.
    pub fn extract_with(
        &self,
        image: &GrayImage,
        scratch: &mut HogScratch,
    ) -> Result<BitVector, HyperHogError> {
        let (slots, _, _) = self.extract_slots_with(image, scratch)?;
        let keys = self.slot_keys_for(slots.len());
        // Fused word-level bundling: bind each slot to its key and
        // update the carry-save bit counts in one pass — bit-identical
        // to the scalar xor + `Accumulator::add` + `threshold`
        // reference (tie-break RNG draws included).
        scratch.bundler.reset(self.config.dim);
        for (i, slot) in slots.iter().enumerate() {
            let value_bits = match self.config.assembly {
                crate::config::Assembly::Quantized => self.quantize_slot_ref(slot.value),
                crate::config::Assembly::Stochastic => slot.shv.as_bits(),
            };
            scratch
                .bundler
                .bind_accumulate(value_bits, &keys[i])
                .expect("dims equal");
        }
        drop(keys);
        let bundled = scratch.bundler.threshold(&mut scratch.mask_rng);
        Ok(self
            .corrupt_with(Shv::from_bits(bundled), &mut scratch.noise_rng)
            .into_bits())
    }

    /// The cell grid an image of the given size induces.
    #[must_use]
    pub fn cell_grid(&self, width: usize, height: usize) -> (usize, usize) {
        (
            self.config.hog.cells_for(width),
            self.config.hog.cells_for(height),
        )
    }

    /// Encodes one pixel of a pyramid level with a position-pure
    /// stream: the bits depend only on `(extractor, pixel value,
    /// level_seed, x, y)`, so every cell that touches this pixel —
    /// computed in any order, on any thread — sees the identical
    /// hypervector.
    fn encode_level_pixel(
        &self,
        image: &GrayImage,
        x: usize,
        y: usize,
        level_seed: u64,
    ) -> Result<Shv, StochasticError> {
        let mut rng = HdcRng::seed_from_u64(derive_coord_seed(
            level_seed ^ PIXEL_STREAM_SALT,
            x as u64,
            y as u64,
        ));
        let v = f64::from(image.get(x, y)).clamp(0.0, 1.0);
        let enc = self.ctx.encode_with(v, &mut rng)?;
        // Error injection rides the same position-keyed stream.
        Ok(self.corrupt_with(enc, &mut rng))
    }

    /// Per-cell scratch streams keyed by absolute cell coordinates.
    fn scratch_for_cell(level_seed: u64, cx: usize, cy: usize) -> HogScratch {
        HogScratch::new(
            HdcRng::seed_from_u64(derive_coord_seed(
                level_seed ^ CELL_MASK_SALT,
                cx as u64,
                cy as u64,
            )),
            HdcRng::seed_from_u64(derive_coord_seed(
                level_seed ^ CELL_NOISE_SALT,
                cx as u64,
                cy as u64,
            )),
        )
    }

    /// Computes the `bins` cached slots of cell `(cx, cy)` of `image`
    /// (an already-normalized pyramid level).
    ///
    /// All randomness comes from streams keyed by `(level_seed,
    /// position)` — the result is a pure function of the extractor,
    /// the image contents, the seed and the cell coordinates,
    /// independent of visit order and thread count. Neighboring cells
    /// re-encode the boundary pixels they share, but the position-pure
    /// pixel streams make those re-encodings bit-identical, so the
    /// cache is globally consistent.
    ///
    /// # Errors
    ///
    /// Returns [`HyperHogError::NoCells`] when the cell coordinates
    /// fall outside the image's cell grid.
    pub fn compute_level_cell(
        &self,
        image: &GrayImage,
        cx: usize,
        cy: usize,
        level_seed: u64,
    ) -> Result<Vec<CachedSlot>, HyperHogError> {
        let c = self.config.hog.cell_size;
        let (cells_x, cells_y) = self.cell_grid(image.width(), image.height());
        if cx >= cells_x || cy >= cells_y {
            return Err(HyperHogError::NoCells {
                width: image.width(),
                height: image.height(),
                cell_size: c,
            });
        }
        let bins = self.config.hog.bins;
        let x0 = cx * c;
        let y0 = cy * c;
        let w = image.width() as isize;
        let h = image.height() as isize;

        // Encode the (c+2)² pixel patch the cell's central differences
        // touch. Out-of-image accesses clamp to the border pixel and
        // are encoded under *its* coordinates, matching what any other
        // cell would produce for the same pixel.
        let pw = c + 2;
        let mut patch = Vec::with_capacity(pw * pw);
        for dy in 0..pw {
            for dx in 0..pw {
                let xa = (x0 as isize + dx as isize - 1).clamp(0, w - 1) as usize;
                let ya = (y0 as isize + dy as isize - 1).clamp(0, h - 1) as usize;
                patch.push(self.encode_level_pixel(image, xa, ya, level_seed)?);
            }
        }
        let at = |x: isize, y: isize| -> &Shv {
            let xa = x.clamp(0, w - 1);
            let ya = y.clamp(0, h - 1);
            let dx = (xa - (x0 as isize - 1)) as usize;
            let dy = (ya - (y0 as isize - 1)) as usize;
            &patch[dy * pw + dx]
        };

        let mut scratch = Self::scratch_for_cell(level_seed, cx, cy);
        let readout = self.config.accumulation == crate::config::Accumulation::Readout;
        let mut sums = vec![0.0; bins];
        let mut means: Vec<Option<Shv>> = vec![None; bins];
        let mut counts = vec![0usize; bins];
        self.cell_pass(
            &at,
            x0,
            y0,
            &mut sums,
            &mut means,
            &mut counts,
            &mut scratch,
        )?;

        // Finalize each bin with the same arithmetic as the per-window
        // path, resolving the assembly immediately so windows only
        // bind and bundle.
        let area = (c * c) as f64;
        let mut out = Vec::with_capacity(bins);
        if readout {
            for sum in sums {
                let value = (sum / area).clamp(0.0, 1.0);
                let bits = match self.config.assembly {
                    crate::config::Assembly::Quantized => self.quantize_slot(value),
                    crate::config::Assembly::Stochastic => {
                        let encoded = self.ctx.encode_with(value, &mut scratch.mask_rng)?;
                        self.corrupt_with(encoded, &mut scratch.noise_rng)
                            .into_bits()
                    }
                };
                out.push(CachedSlot { bits, value });
            }
        } else {
            let zero = self.ctx.encode_with(0.0, &mut scratch.mask_rng)?;
            for (mean, count) in means.into_iter().zip(counts) {
                let shv = match mean {
                    None => zero.clone(),
                    Some(m) => self.ctx.mul(&m, &self.ratio_codes[count])?,
                };
                let shv = self.corrupt_with(shv, &mut scratch.noise_rng);
                let value = self.ctx.decode(&shv)?;
                let bits = match self.config.assembly {
                    crate::config::Assembly::Quantized => self.quantize_slot(value),
                    crate::config::Assembly::Stochastic => shv.into_bits(),
                };
                out.push(CachedSlot { bits, value });
            }
        }
        Ok(out)
    }

    /// Builds the full cell cache of one pyramid level serially (the
    /// parallel path fans [`compute_level_cell`](Self::compute_level_cell)
    /// out across an engine and assembles with
    /// [`LevelCellCache::from_cells`] — the contents are identical).
    ///
    /// # Errors
    ///
    /// Returns [`HyperHogError::NoCells`] when the image is smaller
    /// than one cell.
    pub fn build_level_cache(
        &self,
        image: &GrayImage,
        level_seed: u64,
    ) -> Result<LevelCellCache, HyperHogError> {
        let (cells_x, cells_y) = self.cell_grid(image.width(), image.height());
        if cells_x == 0 || cells_y == 0 {
            return Err(HyperHogError::NoCells {
                width: image.width(),
                height: image.height(),
                cell_size: self.config.hog.cell_size,
            });
        }
        let mut cells = Vec::with_capacity(cells_x * cells_y);
        for cy in 0..cells_y {
            for cx in 0..cells_x {
                cells.push(self.compute_level_cell(image, cx, cy, level_seed)?);
            }
        }
        Ok(LevelCellCache::from_cells(
            cells_x,
            cells_y,
            self.config.hog.bins,
            self.config.dim,
            cells,
        ))
    }

    /// Assembles the feature hypervector of the window spanning
    /// `cells_w × cells_h` cells with top-left cell `(cell_x0,
    /// cell_y0)`, from cached cell slots: each slot's bits are bound
    /// to its *window-relative* slot key and majority-bundled —
    /// exactly the keys and bundling the per-window path uses, so
    /// cached features live in the same space as
    /// [`extract_with`](Self::extract_with)'s and a classifier trained
    /// on either consumes both.
    ///
    /// Per-window cost is O(cells · D) binding plus one threshold —
    /// the O(pixels · D) gradient/magnitude/bin pipeline was paid once
    /// for the whole level when the cache was built.
    ///
    /// # Panics
    ///
    /// Panics if the requested cell span exceeds the cache grid or the
    /// cache dimensionality differs from the extractor's.
    ///
    /// # Errors
    ///
    /// Currently infallible for in-grid requests; returns the same
    /// error type as the sibling extraction entry points for call-site
    /// uniformity.
    pub fn extract_from_cache(
        &self,
        cache: &LevelCellCache,
        cell_x0: usize,
        cell_y0: usize,
        cells_w: usize,
        cells_h: usize,
        scratch: &mut HogScratch,
    ) -> Result<BitVector, HyperHogError> {
        assert_eq!(cache.dim, self.config.dim, "cache dimensionality mismatch");
        assert!(
            cell_x0 + cells_w <= cache.cells_x && cell_y0 + cells_h <= cache.cells_y,
            "window cells [{cell_x0}+{cells_w}, {cell_y0}+{cells_h}] exceed cache grid \
             {}x{}",
            cache.cells_x,
            cache.cells_y,
        );
        let bins = cache.bins;
        let keys = self.slot_keys_for(cells_w * cells_h * bins);
        // Per-window cost is one fused bind+carry-save pass over the
        // cached cells — no per-slot bound vector, no per-bit floats —
        // bit-identical to the scalar `Accumulator` reference.
        scratch.bundler.reset(self.config.dim);
        let mut i = 0;
        for wy in 0..cells_h {
            for wx in 0..cells_w {
                let base = ((cell_y0 + wy) * cache.cells_x + (cell_x0 + wx)) * bins;
                for bin in 0..bins {
                    scratch
                        .bundler
                        .bind_accumulate(&cache.slots[base + bin].bits, &keys[i])
                        .expect("dims equal");
                    i += 1;
                }
            }
        }
        drop(keys);
        let bundled = scratch.bundler.threshold(&mut scratch.mask_rng);
        Ok(self
            .corrupt_with(Shv::from_bits(bundled), &mut scratch.noise_rng)
            .into_bits())
    }
}

impl fmt::Debug for HyperHog {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "HyperHog(D={}, cell={}, bins={}, sqrt_iters={}, ber={})",
            self.config.dim,
            self.config.hog.cell_size,
            self.config.hog.bins,
            self.config.sqrt_iters,
            self.config.bit_error_rate
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classic::ClassicHog;
    use crate::config::HogConfig;

    fn small_config(dim: usize) -> HyperHogConfig {
        let mut c = HyperHogConfig::with_dim(dim.max(64));
        c.hog = HogConfig {
            cell_size: 8,
            bins: 8,
            block_normalize: false,
        };
        c
    }

    #[test]
    fn rejects_images_smaller_than_a_cell() {
        let mut hog = HyperHog::new(small_config(512), 1);
        let img = GrayImage::new(4, 4);
        assert!(matches!(
            hog.extract(&img),
            Err(HyperHogError::NoCells { .. })
        ));
        let e = hog.extract_histogram(&img).unwrap_err();
        assert!(e.to_string().contains("4x4"));
    }

    #[test]
    fn flat_image_histogram_is_near_zero() {
        let mut hog = HyperHog::new(small_config(4096), 2);
        let img = GrayImage::filled(16, 16, 0.5);
        let f = hog.extract_histogram(&img).unwrap();
        for &v in f.as_slice() {
            assert!(v.abs() < 0.08, "slot value {v} should be ≈ 0");
        }
    }

    #[test]
    fn ramp_histogram_matches_classic_direction() {
        let mut hog = HyperHog::new(small_config(8192), 3);
        // Gradient direction θ = atan(1/2) ≈ 26.6° sits mid-bin; a
        // pure horizontal ramp would land exactly on the bin-7/bin-0
        // boundary, where sign noise legitimately splits the mass.
        let img = GrayImage::from_fn(16, 16, |x, y| (2 * x + y) as f32 / 45.0);
        let hd = hog.extract_histogram(&img).unwrap();
        let classic = ClassicHog::new(small_config(0x0).hog).extract(&img);
        // East bin (0) dominates in both; compare cell (1, 1).
        let hd_hist = hd.cell_histogram(1, 1);
        let cl_hist = classic.cell_histogram(1, 1);
        let hd_max = hd_hist
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        let cl_max = cl_hist
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        assert_eq!(
            hd_max, cl_max,
            "dominant bin differs: hd {hd_hist:?} vs classic {cl_hist:?}"
        );
    }

    #[test]
    fn histogram_parity_with_classic_within_noise() {
        let mut hog = HyperHog::new(small_config(8192), 4);
        let img = GrayImage::from_fn(16, 16, |x, y| {
            0.5 + 0.4 * ((x as f32 * 0.7).sin() * (y as f32 * 0.5).cos())
        });
        let hd = hog.extract_histogram(&img).unwrap();
        let classic = ClassicHog::new(small_config(0).hog).extract(&img);
        let diff = hd.mean_abs_diff(&classic);
        assert!(diff < 0.05, "mean abs diff {diff} too large");
    }

    #[test]
    fn feature_vector_has_context_dimension() {
        let mut hog = HyperHog::new(small_config(1024), 5);
        let img = GrayImage::from_fn(16, 16, |x, y| ((x + y) % 3) as f32 / 2.0);
        let f = hog.extract(&img).unwrap();
        assert_eq!(f.dim(), 1024);
    }

    #[test]
    fn similar_images_produce_similar_features() {
        let mut hog = HyperHog::new(small_config(4096), 6);
        // Horizontal sawtooth: strong, consistently east-oriented
        // gradients in every cell (period 8 avoids the aliasing that
        // zeroes central differences on period-2 patterns).
        let saw_h = GrayImage::from_fn(32, 32, |x, _| (x % 8) as f32 / 7.0);
        // Same orientations, slightly weaker magnitudes — close.
        let saw_h_scaled = GrayImage::from_fn(32, 32, |x, _| 0.05 + 0.8 * (x % 8) as f32 / 7.0);
        // Vertical sawtooth: the same magnitudes in orthogonal bins —
        // far.
        let saw_v = GrayImage::from_fn(32, 32, |_, y| (y % 8) as f32 / 7.0);
        let fa = hog.extract(&saw_h).unwrap();
        let fb = hog.extract(&saw_h_scaled).unwrap();
        let fc = hog.extract(&saw_v).unwrap();
        let sim_close = fa.similarity(&fb).unwrap();
        let sim_far = fa.similarity(&fc).unwrap();
        assert!(
            sim_close > sim_far,
            "close {sim_close} should exceed far {sim_far}"
        );
    }

    #[test]
    fn extraction_is_reproducible_per_seed() {
        let img = GrayImage::from_fn(16, 16, |x, y| ((x * y) % 5) as f32 / 4.0);
        let a = HyperHog::new(small_config(1024), 9).extract(&img).unwrap();
        let b = HyperHog::new(small_config(1024), 9).extract(&img).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn bit_errors_perturb_but_do_not_destroy() {
        // Robustness is a property of the *decoded values*: 2% random
        // bit errors on every intermediate hypervector shift slot
        // values only at the noise-floor scale, so the quantized
        // feature stays close to the clean one.
        let img = GrayImage::from_fn(16, 16, |x, _| x as f32 / 15.0);
        let clean_hist = HyperHog::new(small_config(4096), 10)
            .extract_histogram(&img)
            .unwrap();
        let noisy_hist = HyperHog::new(small_config(4096).with_bit_error_rate(0.02), 10)
            .extract_histogram(&img)
            .unwrap();
        let diff = clean_hist.mean_abs_diff(&noisy_hist);
        assert!(diff < 0.06, "2% bit error moved histograms by {diff}");

        let clean = HyperHog::new(small_config(4096), 10).extract(&img).unwrap();
        let noisy = HyperHog::new(small_config(4096).with_bit_error_rate(0.02), 10)
            .extract(&img)
            .unwrap();
        let sim = clean.similarity(&noisy).unwrap();
        assert!(
            sim > 0.4,
            "2% bit error should keep quantized features similar, got {sim}"
        );
    }

    #[test]
    fn level_codebook_similarity_is_linear_in_distance() {
        let mut rng = HdcRng::seed_from_u64(3);
        let codes = build_level_codes(8192, 9, &mut rng);
        assert_eq!(codes.len(), 9);
        for i in 0..9 {
            for j in 0..9 {
                let want = 1.0 - (i as f64 - j as f64).abs() / 8.0;
                let got = codes[i].similarity(&codes[j]).unwrap();
                assert!(
                    (got - want).abs() < 0.05,
                    "levels {i},{j}: sim {got} want {want}"
                );
            }
        }
    }

    #[test]
    fn quantized_features_of_same_image_are_nearly_identical() {
        // The deterministic codebook makes repeated extraction of the
        // same image agree strongly despite fresh stochastic masks.
        let img = GrayImage::from_fn(16, 16, |x, _| x as f32 / 15.0);
        let mut hog = HyperHog::new(small_config(4096), 11);
        let a = hog.extract(&img).unwrap();
        let b = hog.extract(&img).unwrap();
        let sim = a.similarity(&b).unwrap();
        assert!(sim > 0.7, "repeat extraction similarity {sim}");
    }

    #[test]
    fn stochastic_assembly_gives_weaker_kernel_than_quantized() {
        // The documented ablation: pure stochastic slot binding keeps
        // only a weak value-product kernel across independent runs.
        let img = GrayImage::from_fn(16, 16, |x, _| x as f32 / 15.0);
        let mut q = HyperHog::new(small_config(4096), 12);
        let qa = q.extract(&img).unwrap();
        let qb = q.extract(&img).unwrap();
        let mut s = HyperHog::new(
            small_config(4096).with_assembly(crate::config::Assembly::Stochastic),
            12,
        );
        let sa = s.extract(&img).unwrap();
        let sb = s.extract(&img).unwrap();
        let q_sim = qa.similarity(&qb).unwrap();
        let s_sim = sa.similarity(&sb).unwrap();
        assert!(
            q_sim > s_sim + 0.2,
            "quantized {q_sim} should beat stochastic {s_sim}"
        );
    }

    #[test]
    fn debug_formats() {
        let hog = HyperHog::new(small_config(256), 0);
        let s = format!("{hog:?}");
        assert!(s.contains("D=256"));
    }

    #[test]
    fn worker_clones_share_the_feature_space() {
        // A worker clone must produce features comparable to the
        // original's: same basis, same codebooks and — critically —
        // the same slot keys even when the two instances grow their
        // key caches in different orders.
        let img = GrayImage::from_fn(32, 32, |x, _| (x % 8) as f32 / 7.0);
        let small = GrayImage::from_fn(16, 16, |x, _| (x % 8) as f32 / 7.0);
        let mut original = HyperHog::new(small_config(4096), 5);
        let mut worker = original.clone_for_worker(2);
        // Worker grows keys for the 32x32 grid first; original starts
        // with the smaller grid, then the large one.
        let fw = worker.extract(&img).unwrap();
        let _ = original.extract(&small).unwrap();
        let fo = original.extract(&img).unwrap();
        let sim = fo.similarity(&fw).unwrap();
        assert!(
            sim > 0.5,
            "original and worker features diverged (sim {sim}) — slot keys differ"
        );
    }

    #[test]
    fn shared_state_extraction_matches_worker_clone() {
        // scratch_for_stream + extract_with over one shared extractor
        // must reproduce the legacy clone_for_worker path bit-for-bit,
        // with or without a warm slot-key cache.
        let img = GrayImage::from_fn(16, 16, |x, y| ((x * 3 + y) % 7) as f32 / 6.0);
        let mut prepared = HyperHog::new(small_config(2048), 7);
        prepared.prepare_for_image(16, 16);
        let expect = prepared.clone_for_worker(3).extract(&img).unwrap();

        let mut scratch = prepared.scratch_for_stream(3);
        assert_eq!(prepared.extract_with(&img, &mut scratch).unwrap(), expect);

        // Cold cache: keys derive on the fly to the same bits.
        let cold = HyperHog::new(small_config(2048), 7);
        let mut scratch = cold.scratch_for_stream(3);
        assert_eq!(cold.extract_with(&img, &mut scratch).unwrap(), expect);
    }

    #[test]
    fn level_cache_cells_are_position_pure() {
        // A cached cell must be a pure function of (extractor, image,
        // level_seed, cx, cy): recomputation, clones, and unrelated
        // extractor history all give the same bits.
        let img = GrayImage::from_fn(24, 24, |x, y| ((x * 5 + y * 3) % 11) as f32 / 10.0);
        let hog = HyperHog::new(small_config(1024), 21);
        let a = hog.compute_level_cell(&img, 1, 2, 77).unwrap();
        let b = hog.compute_level_cell(&img, 1, 2, 77).unwrap();
        assert_eq!(a.len(), b.len());
        for (sa, sb) in a.iter().zip(&b) {
            assert_eq!(sa.bits(), sb.bits());
            assert_eq!(sa.value(), sb.value());
        }
        // A worker clone (different RNG streams) agrees too — the cell
        // streams are position-keyed, not extractor-stream-keyed.
        let worker = hog.clone_for_worker(9);
        let c = worker.compute_level_cell(&img, 1, 2, 77).unwrap();
        for (sa, sc) in a.iter().zip(&c) {
            assert_eq!(sa.bits(), sc.bits());
        }
        // Different cells and different level seeds give different
        // slots (the image is textured, so values differ).
        let other = hog.compute_level_cell(&img, 2, 1, 77).unwrap();
        assert!(a.iter().zip(&other).any(|(x, y)| x.bits() != y.bits()));
        let reseeded = hog.compute_level_cell(&img, 1, 2, 78).unwrap();
        assert!(a.iter().zip(&reseeded).any(|(x, y)| x.bits() != y.bits()));
    }

    #[test]
    fn cached_assembly_is_visit_order_free() {
        // Assembling the cache from cells computed in reverse order
        // must give bit-identical window features: the determinism
        // contract the parallel cache build relies on.
        let img = GrayImage::from_fn(32, 24, |x, y| ((x * 3 + y * 7) % 13) as f32 / 12.0);
        let hog = HyperHog::new(small_config(2048), 5);
        let (cells_x, cells_y) = hog.cell_grid(img.width(), img.height());
        assert_eq!((cells_x, cells_y), (4, 3));

        let forward = hog.build_level_cache(&img, 123).unwrap();
        let mut reversed: Vec<Vec<CachedSlot>> = Vec::new();
        for cy in (0..cells_y).rev() {
            for cx in (0..cells_x).rev() {
                reversed.push(hog.compute_level_cell(&img, cx, cy, 123).unwrap());
            }
        }
        reversed.reverse();
        let backward = LevelCellCache::from_cells(cells_x, cells_y, 8, 2048, reversed);

        let mut s1 = hog.scratch_for_stream(4);
        let mut s2 = hog.scratch_for_stream(4);
        let f1 = hog
            .extract_from_cache(&forward, 1, 0, 2, 2, &mut s1)
            .unwrap();
        let f2 = hog
            .extract_from_cache(&backward, 1, 0, 2, 2, &mut s2)
            .unwrap();
        assert_eq!(f1, f2);
        // And repeated assembly with the same stream is reproducible.
        let mut s3 = hog.scratch_for_stream(4);
        assert_eq!(
            hog.extract_from_cache(&forward, 1, 0, 2, 2, &mut s3)
                .unwrap(),
            f1
        );
    }

    #[test]
    fn cached_features_track_per_window_features() {
        // A cache-assembled window must land near the legacy
        // per-window feature of the same crop (the stochastic streams
        // differ by construction, so equality is not expected) and far
        // from the feature of a different crop.
        let img = GrayImage::from_fn(32, 32, |x, _| (x % 8) as f32 / 7.0);
        let vertical = GrayImage::from_fn(16, 16, |_, y| (y % 8) as f32 / 7.0);
        let hog = HyperHog::new(small_config(4096), 13);
        let cache = hog.build_level_cache(&img, 55).unwrap();

        let mut s = hog.scratch_for_stream(1);
        let cached = hog.extract_from_cache(&cache, 0, 0, 2, 2, &mut s).unwrap();
        let crop = img.crop(0, 0, 16, 16).unwrap();
        let mut s = hog.scratch_for_stream(2);
        let per_window = hog.extract_with(&crop, &mut s).unwrap();
        let mut s = hog.scratch_for_stream(3);
        let far = hog.extract_with(&vertical, &mut s).unwrap();

        let sim_same = cached.similarity(&per_window).unwrap();
        let sim_far = cached.similarity(&far).unwrap();
        assert!(
            sim_same > sim_far + 0.05,
            "cached-vs-window {sim_same} should clearly beat unrelated {sim_far}"
        );
    }

    #[test]
    fn slot_key_cache_reports_warm_and_cold_lookups() {
        let img = GrayImage::from_fn(16, 16, |x, _| x as f32 / 15.0);
        let hog = HyperHog::new(small_config(512), 2);
        assert_eq!(hog.key_cache_stats(), (0, 0));

        // First shared-state extraction at a new geometry: cold.
        let mut s = hog.scratch_for_stream(1);
        hog.extract_with(&img, &mut s).unwrap();
        assert_eq!(hog.key_cache_stats(), (0, 1));

        // Same geometry again: warm — the cold lookup installed the
        // keys for everyone.
        let mut s = hog.scratch_for_stream(2);
        hog.extract_with(&img, &mut s).unwrap();
        assert_eq!(hog.key_cache_stats(), (1, 1));

        // prepare_for_image is a warm-up, not a lookup: it grows the
        // cache without touching the counters, and the extraction
        // after it is warm.
        hog.prepare_for_image(32, 32);
        let big = GrayImage::from_fn(32, 32, |x, _| x as f32 / 31.0);
        let mut s = hog.scratch_for_stream(3);
        hog.extract_with(&big, &mut s).unwrap();
        assert_eq!(hog.key_cache_stats(), (2, 1));
    }

    #[test]
    fn worker_streams_are_independent() {
        let img = GrayImage::from_fn(16, 16, |x, _| x as f32 / 15.0);
        let base = HyperHog::new(small_config(1024), 6);
        let fa = base.clone_for_worker(1).extract(&img).unwrap();
        let fb = base.clone_for_worker(2).extract(&img).unwrap();
        // Same space (similar) but not bit-identical (different mask
        // streams).
        assert_ne!(fa, fb);
        assert!(fa.similarity(&fb).unwrap() > 0.3);
    }
}
