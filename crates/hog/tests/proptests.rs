//! Property-based tests for the HOG extractors.

use hdface_hog::{bin_of_angle, gradient_at, BinBoundaries, ClassicHog, HogConfig};
use hdface_imaging::GrayImage;
use proptest::prelude::*;

/// Strategy: a random image with dimensions that hold at least one
/// 8×8 cell.
fn arb_image() -> impl Strategy<Value = GrayImage> {
    (8usize..=24, 8usize..=24).prop_flat_map(|(w, h)| {
        prop::collection::vec(0.0f32..=1.0, w * h)
            .prop_map(move |px| GrayImage::from_pixels(w, h, px).expect("sized"))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn gradients_are_bounded_by_half(img in arb_image(), x in 0usize..24, y in 0usize..24) {
        prop_assume!(x < img.width() && y < img.height());
        let (gx, gy) = gradient_at(&img, x, y);
        prop_assert!(gx.abs() <= 0.5 + 1e-9);
        prop_assert!(gy.abs() <= 0.5 + 1e-9);
    }

    #[test]
    fn histogram_values_stay_in_stochastic_range(img in arb_image()) {
        let hog = ClassicHog::new(HogConfig::paper());
        let f = hog.extract(&img);
        for &v in f.as_slice() {
            prop_assert!((0.0..=0.5).contains(&v), "value {v}");
        }
    }

    #[test]
    fn feature_length_matches_config(img in arb_image()) {
        let cfg = HogConfig::paper();
        let hog = ClassicHog::new(cfg);
        let f = hog.extract(&img);
        prop_assert_eq!(f.len(), cfg.feature_len(img.width(), img.height()));
    }

    #[test]
    fn constant_images_have_zero_features(c in 0.0f32..=1.0) {
        let hog = ClassicHog::new(HogConfig::paper());
        let f = hog.extract(&GrayImage::filled(16, 16, c));
        prop_assert!(f.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn intensity_inversion_rotates_bins_half_turn(img in arb_image()) {
        // I ↦ 1−I negates every gradient, so each magnitude moves to
        // the opposite bin (a half rotation of the signed histogram).
        let hog = ClassicHog::new(HogConfig::paper());
        let f = hog.extract(&img);
        let inverted = GrayImage::from_fn(img.width(), img.height(), |x, y| 1.0 - img.get(x, y));
        let g = hog.extract(&inverted);
        let bins = 8;
        for cy in 0..f.cells_y() {
            for cx in 0..f.cells_x() {
                for b in 0..bins {
                    let a = f.get(cx, cy, b);
                    let bb = g.get(cx, cy, (b + bins / 2) % bins);
                    prop_assert!((a - bb).abs() < 1e-6,
                        "cell ({cx},{cy}) bin {b}: {a} vs opposite {bb}");
                }
            }
        }
    }

    #[test]
    fn comparison_binning_agrees_with_atan2(theta in 0.0f64..std::f64::consts::TAU, bins in prop::sample::select(vec![8usize, 16, 32])) {
        // Skip angles within a hair of a bin boundary where float
        // rounding legitimately flips the bin.
        let width = std::f64::consts::TAU / bins as f64;
        let frac = (theta / width).fract();
        prop_assume!(frac > 1e-6 && frac < 1.0 - 1e-6);
        let (gy, gx) = theta.sin_cos();
        let b = BinBoundaries::new(bins);
        prop_assert_eq!(b.bin_by_comparisons(gx, gy), bin_of_angle(gx, gy, bins));
    }

    #[test]
    fn magnitude_scaling_preserves_bins_and_scales_histogram(img in arb_image(), k in 0.2f32..=0.9) {
        // Scaling image contrast scales every histogram value by the
        // same factor without moving mass between bins.
        let hog = ClassicHog::new(HogConfig::paper());
        let f = hog.extract(&img);
        let mean = img.mean();
        let scaled = GrayImage::from_fn(img.width(), img.height(), |x, y| {
            mean + (img.get(x, y) - mean) * k
        });
        let g = hog.extract(&scaled);
        for (a, b) in f.as_slice().iter().zip(g.as_slice()) {
            // f32 pixel clamping introduces small deviations.
            prop_assert!((a * f64::from(k) - b).abs() < 0.02, "{a} * {k} vs {b}");
        }
    }
}
