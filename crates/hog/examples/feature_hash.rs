//! Prints checksums of extracted hyper-HOG features for a fixed
//! image, seed, and stream layout — a quick cross-revision probe that
//! the window-encoding path (including the bit-sliced bundling
//! kernel) is bit-identical to earlier builds in both the per-window
//! and cached extraction modes.
//!
//! ```sh
//! cargo run --release -p hdface-hog --example feature_hash
//! ```

use hdface_hog::{HyperHog, HyperHogConfig};
use hdface_imaging::GrayImage;

fn main() {
    for dim in [1024usize, 4096, 8193] {
        let img = GrayImage::from_fn(32, 32, |x, y| ((x * 3 + y * 7) % 13) as f32 / 12.0);
        let hog = HyperHog::new(HyperHogConfig::with_dim(dim), 7);
        let mut s = hog.scratch_for_stream(3);
        let f = hog.extract_with(&img, &mut s).unwrap();
        let cache = hog.build_level_cache(&img.normalized(), 99).unwrap();
        let mut s2 = hog.scratch_for_stream(4);
        let g = hog.extract_from_cache(&cache, 0, 0, 2, 2, &mut s2).unwrap();
        println!(
            "dim {dim}: window {:016x} cached {:016x}",
            f.checksum(),
            g.checksum()
        );
    }
}
