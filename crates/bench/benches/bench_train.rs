//! Criterion benchmarks for the learning stages: one adaptive HDC
//! epoch versus one DNN epoch over identical sample counts — the
//! software measurement behind the paper's per-epoch claim (0.9 s vs
//! 5.4 s on the embedded CPU).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hdface_baselines::{Mlp, MlpConfig};
use hdface_hdc::{BitVector, HdcRng, SeedableRng};
use hdface_learn::{HdClassifier, TrainConfig};
use std::hint::black_box;

const SAMPLES: usize = 64;
const FEATURES: usize = 288; // 6x6 cells x 8 bins
const CLASSES: usize = 7;

fn bench_training(c: &mut Criterion) {
    let mut group = c.benchmark_group("one_training_epoch");
    group.sample_size(10);

    // HDC epoch at the paper's dimensionalities.
    for dim in [1024usize, 4096] {
        let mut rng = HdcRng::seed_from_u64(1);
        let samples: Vec<(BitVector, usize)> = (0..SAMPLES)
            .map(|i| (BitVector::random(dim, &mut rng), i % CLASSES))
            .collect();
        group.bench_with_input(BenchmarkId::new("hdc_epoch", dim), &dim, |b, _| {
            b.iter(|| {
                let mut clf = HdClassifier::new(CLASSES, dim);
                clf.fit(black_box(&samples), &TrainConfig::single_pass(), &mut rng)
                    .unwrap();
            });
        });
    }

    // DNN epoch at two hidden sizes of the Fig. 5b sweep.
    for hidden in [256usize, 1024] {
        let mut rng = HdcRng::seed_from_u64(2);
        let data: Vec<(Vec<f64>, usize)> = (0..SAMPLES)
            .map(|i| {
                let x: Vec<f64> = (0..FEATURES)
                    .map(|j| ((i * 31 + j * 7) % 100) as f64 / 100.0)
                    .collect();
                (x, i % CLASSES)
            })
            .collect();
        let _ = &mut rng;
        group.bench_with_input(BenchmarkId::new("dnn_epoch", hidden), &hidden, |b, &h| {
            b.iter(|| {
                let cfg = MlpConfig {
                    input: FEATURES,
                    hidden1: h,
                    hidden2: h,
                    output: CLASSES,
                    lr: 0.02,
                    momentum: 0.9,
                    epochs: 1,
                    batch_size: 16,
                    seed: 3,
                };
                let mut mlp = Mlp::new(&cfg);
                mlp.fit(black_box(&data)).unwrap();
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_training);
criterion_main!(benches);
