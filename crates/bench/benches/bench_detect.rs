//! Criterion benchmarks for the parallel sliding-window detection
//! engine: windows/second at D = 1k / 4k / 8k, scanning with one
//! worker vs all available cores. The two configurations return
//! bit-identical detections (asserted in the setup), so the only
//! thing being compared is wall-clock throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hdface::datasets::face2_spec;
use hdface::detector::{DetectorConfig, FaceDetector};
use hdface::engine::Engine;
use hdface::imaging::GrayImage;
use hdface::learn::TrainConfig;
use hdface::pipeline::{HdFeatureMode, HdPipeline};
use std::hint::black_box;

const WINDOW: usize = 32;

fn test_scene(n: usize) -> GrayImage {
    GrayImage::from_fn(n, n, |x, y| {
        0.5 + 0.4 * ((x as f32 * 0.43).sin() * (y as f32 * 0.29).cos())
    })
}

fn trained_detector(dim: usize) -> FaceDetector {
    let data = face2_spec().at_size(WINDOW).scaled(12).generate(3);
    let mut pipeline = HdPipeline::new(HdFeatureMode::hyper_hog(dim), 3);
    pipeline
        .train(&data, &TrainConfig::single_pass())
        .expect("training the bench pipeline");
    FaceDetector::new(
        pipeline,
        DetectorConfig {
            window: WINDOW,
            stride_fraction: 0.25,
            ..DetectorConfig::default()
        },
    )
}

fn bench_detect(c: &mut Criterion) {
    let scene = test_scene(80);
    let serial = Engine::serial();
    let parallel = Engine::from_env();

    let mut group = c.benchmark_group("detect_80x80");
    group.sample_size(10);
    for dim in [1024usize, 4096, 8192] {
        let det = trained_detector(dim);
        // The engine's contract, checked where a violation would
        // silently invalidate the comparison:
        assert_eq!(
            det.detect_with(&scene, &serial).unwrap(),
            det.detect_with(&scene, &parallel).unwrap(),
            "parallel scan diverged from serial at D={dim}"
        );
        group.bench_with_input(BenchmarkId::new("serial", dim), &dim, |b, _| {
            b.iter(|| det.detect_with(black_box(&scene), &serial).unwrap());
        });
        group.bench_with_input(
            BenchmarkId::new(format!("threads_{}", parallel.threads()), dim),
            &dim,
            |b, _| {
                b.iter(|| det.detect_with(black_box(&scene), &parallel).unwrap());
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_detect);
criterion_main!(benches);
