//! Criterion benchmarks for the analytic platform models themselves —
//! the cost-model evaluation is pure arithmetic and must stay cheap
//! enough to sweep (Fig. 7 evaluates dozens of scenario × platform ×
//! phase combinations).

use criterion::{criterion_group, criterion_main, Criterion};
use hdface_hwsim::{CpuModel, FpgaModel, Phase, Platform, Scenario};
use std::hint::black_box;

fn bench_models(c: &mut Criterion) {
    let mut group = c.benchmark_group("hwsim");
    let cpu = CpuModel::cortex_a53();
    let fpga = FpgaModel::kintex7();
    let scenarios = Scenario::table1();

    group.bench_function("fig7_full_sweep", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for sc in &scenarios {
                for phase in [
                    Phase::Training,
                    Phase::TrainingEpoch,
                    Phase::Inference,
                    Phase::InferenceCached,
                ] {
                    for p in [&cpu as &dyn Platform, &fpga] {
                        let row = sc.compare(black_box(p), phase);
                        acc += row.speedup + row.energy_gain;
                    }
                }
            }
            acc
        });
    });

    group.bench_function("single_workload_ops", |b| {
        let sc = scenarios[0];
        let hd = sc.hdface_default();
        b.iter(|| sc.ops(black_box(&hd), Phase::Training));
    });
    group.finish();
}

criterion_group!(benches, bench_models);
criterion_main!(benches);
