//! Criterion benchmarks for the stochastic arithmetic primitives —
//! the microarchitecture-level companion to Fig. 2 (how expensive each
//! primitive is at the paper's dimensionalities) — plus the
//! bind+accumulate+threshold bundling kernels, tracked per word count
//! so the bit-sliced win is visible independent of end-to-end scans.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hdface_hdc::{Accumulator, BitSlicedBundler, BitVector, HdcRng, SeedableRng};
use hdface_stochastic::StochasticContext;
use std::hint::black_box;

fn bench_primitives(c: &mut Criterion) {
    let mut group = c.benchmark_group("stochastic_primitives");
    group.sample_size(20);
    for dim in [1024usize, 4096, 10240] {
        let mut ctx = StochasticContext::new(dim, 7);
        let a = ctx.encode(0.6).unwrap();
        let b = ctx.encode(-0.3).unwrap();

        group.bench_with_input(BenchmarkId::new("encode", dim), &dim, |bch, _| {
            bch.iter(|| ctx.encode(black_box(0.37)).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("decode", dim), &dim, |bch, _| {
            bch.iter(|| ctx.decode(black_box(&a)).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("weighted_average", dim), &dim, |bch, _| {
            bch.iter(|| {
                ctx.weighted_average(black_box(&a), black_box(&b), 0.5)
                    .unwrap()
            });
        });
        group.bench_with_input(BenchmarkId::new("multiply", dim), &dim, |bch, _| {
            bch.iter(|| ctx.mul(black_box(&a), black_box(&b)).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("square", dim), &dim, |bch, _| {
            bch.iter(|| ctx.square(black_box(&a)).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("sqrt", dim), &dim, |bch, _| {
            bch.iter(|| ctx.sqrt(black_box(&a)).unwrap());
        });
    }
    group.finish();
}

/// Slots bundled per window in the benchmark stream: 16 HOG cells ×
/// 8 orientation bins, the shape of one 32×32 detection window.
const SLOTS: usize = 128;

fn bench_bundling(c: &mut Criterion) {
    let mut group = c.benchmark_group("bundling");
    group.sample_size(20);
    for dim in [1024usize, 4096, 8192] {
        let mut rng = HdcRng::seed_from_u64(2022);
        let values: Vec<BitVector> = (0..SLOTS)
            .map(|_| BitVector::random(dim, &mut rng))
            .collect();
        let keys: Vec<BitVector> = (0..SLOTS)
            .map(|_| BitVector::random(dim, &mut rng))
            .collect();
        let mut tie_rng = HdcRng::seed_from_u64(7);

        // Scalar reference: explicit xor-bind, per-dimension f64
        // counters, per-bit threshold.
        group.bench_with_input(
            BenchmarkId::new("scalar_accumulator", dim),
            &dim,
            |bch, _| {
                bch.iter(|| {
                    let mut acc = Accumulator::new(dim);
                    for (v, k) in values.iter().zip(&keys) {
                        acc.add(&v.xor(k).unwrap()).unwrap();
                    }
                    black_box(acc.threshold(&mut tie_rng))
                });
            },
        );
        // Fused kernel: bind+accumulate in one word-parallel pass over
        // carry-save planes, word-level threshold. Scratch reuse
        // mirrors the per-worker `HogScratch` in the detector.
        let mut bundler = BitSlicedBundler::new(dim);
        group.bench_with_input(BenchmarkId::new("bitsliced_kernel", dim), &dim, |bch, _| {
            bch.iter(|| {
                bundler.reset(dim);
                for (v, k) in values.iter().zip(&keys) {
                    bundler.bind_accumulate(v, k).unwrap();
                }
                black_box(bundler.threshold(&mut tie_rng))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_primitives, bench_bundling);
criterion_main!(benches);
