//! Criterion benchmarks for the stochastic arithmetic primitives —
//! the microarchitecture-level companion to Fig. 2 (how expensive each
//! primitive is at the paper's dimensionalities).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hdface_stochastic::StochasticContext;
use std::hint::black_box;

fn bench_primitives(c: &mut Criterion) {
    let mut group = c.benchmark_group("stochastic_primitives");
    group.sample_size(20);
    for dim in [1024usize, 4096, 10240] {
        let mut ctx = StochasticContext::new(dim, 7);
        let a = ctx.encode(0.6).unwrap();
        let b = ctx.encode(-0.3).unwrap();

        group.bench_with_input(BenchmarkId::new("encode", dim), &dim, |bch, _| {
            bch.iter(|| ctx.encode(black_box(0.37)).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("decode", dim), &dim, |bch, _| {
            bch.iter(|| ctx.decode(black_box(&a)).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("weighted_average", dim), &dim, |bch, _| {
            bch.iter(|| {
                ctx.weighted_average(black_box(&a), black_box(&b), 0.5)
                    .unwrap()
            });
        });
        group.bench_with_input(BenchmarkId::new("multiply", dim), &dim, |bch, _| {
            bch.iter(|| ctx.mul(black_box(&a), black_box(&b)).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("square", dim), &dim, |bch, _| {
            bch.iter(|| ctx.square(black_box(&a)).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("sqrt", dim), &dim, |bch, _| {
            bch.iter(|| ctx.sqrt(black_box(&a)).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_primitives);
criterion_main!(benches);
