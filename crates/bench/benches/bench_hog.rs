//! Criterion benchmarks comparing the classic float HOG against the
//! hyperdimensional HOG — the software-side cost of moving feature
//! extraction into hyperspace (the hardware-side story is `exp_fig7`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hdface_hog::{ClassicHog, HogConfig, HyperHog, HyperHogConfig};
use hdface_imaging::GrayImage;
use std::hint::black_box;

fn test_image(n: usize) -> GrayImage {
    GrayImage::from_fn(n, n, |x, y| {
        0.5 + 0.4 * ((x as f32 * 0.43).sin() * (y as f32 * 0.29).cos())
    })
}

fn bench_extractors(c: &mut Criterion) {
    let mut group = c.benchmark_group("hog_extraction_32x32");
    group.sample_size(10);
    let img = test_image(32);

    let classic = ClassicHog::new(HogConfig::paper());
    group.bench_function("classic_float", |b| {
        b.iter(|| classic.extract(black_box(&img)));
    });

    for dim in [1024usize, 4096] {
        let mut hyper = HyperHog::new(HyperHogConfig::with_dim(dim), 3);
        group.bench_with_input(BenchmarkId::new("hyperdimensional", dim), &dim, |b, _| {
            b.iter(|| hyper.extract(black_box(&img)).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_extractors);
criterion_main!(benches);
