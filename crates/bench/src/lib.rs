//! # hdface-bench — experiment harness
//!
//! Shared infrastructure for the experiment binaries that regenerate
//! every table and figure of the HDFace paper (see `DESIGN.md` §4 for
//! the experiment index):
//!
//! | binary | paper artifact |
//! |---|---|
//! | `exp_fig2` | Fig. 2 — stochastic-arithmetic error vs dimensionality |
//! | `exp_table1` | Table 1 — dataset shapes |
//! | `exp_fig4` | Fig. 4 — accuracy vs DNN / SVM |
//! | `exp_fig5` | Fig. 5 — dimensionality & DNN-architecture sweeps |
//! | `exp_fig6` | Fig. 6 — sliding-window detection maps |
//! | `exp_fig7` | Fig. 7 — CPU/FPGA speedup & energy |
//! | `exp_table2` | Table 2 — robustness to random bit errors |
//! | `exp_motivation` | §2 — HOG cost share & float fragility |
//! | `exp_ablation` | DESIGN.md §6 — design-choice ablations |
//!
//! Every binary accepts `--full` for a larger (slower) run and
//! `--seed <n>`; defaults finish in seconds-to-minutes on a laptop.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;

use hdface::datasets::{face2_spec, render_scrambled_face, Dataset, LabeledImage};
use hdface::hdc::{HdcRng, SeedableRng};

/// The face-detection workload used by the robustness and sweep
/// experiments: FACE2-style windows where **half the no-face class are
/// scrambled faces** — hard negatives with face-like local statistics
/// but the wrong global arrangement. Without them every learner on
/// the clean synthetic task has margins so wide that neither bit
/// faults nor architecture choices are visible.
#[must_use]
pub fn hard_face_dataset(win: usize, count: usize, seed: u64) -> Dataset {
    let base = face2_spec().at_size(win).scaled(count).generate(seed);
    let mut rng = HdcRng::seed_from_u64(seed ^ 0xface);
    let samples: Vec<LabeledImage> = base
        .iter()
        .enumerate()
        .map(|(i, s)| {
            if s.label == 0 && i % 4 < 2 {
                LabeledImage {
                    image: render_scrambled_face(win, &mut rng),
                    label: 0,
                }
            } else {
                s.clone()
            }
        })
        .collect();
    Dataset::new(
        "FACE2+hard-negatives",
        samples,
        vec!["no-face".into(), "face".into()],
    )
}

/// Run-scale options parsed from the command line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunConfig {
    /// `--full`: paper-leaning sizes instead of quick defaults.
    pub full: bool,
    /// `--smoke`: tiny CI-gate run — smallest sizes, assert the
    /// headline invariant, exit non-zero on regression, write no
    /// report files. Takes precedence over `--full`.
    pub smoke: bool,
    /// `--seed <n>`: master seed (default 2022, the paper's year).
    pub seed: u64,
}

impl RunConfig {
    /// Parses `std::env::args()`.
    ///
    /// # Panics
    ///
    /// Panics with a usage message on malformed arguments.
    #[must_use]
    pub fn from_args() -> Self {
        let mut cfg = RunConfig {
            full: false,
            smoke: false,
            seed: 2022,
        };
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--full" => cfg.full = true,
                "--smoke" => cfg.smoke = true,
                "--seed" => {
                    let v = args.next().expect("--seed requires a value");
                    cfg.seed = v.parse().expect("--seed value must be an integer");
                }
                other => {
                    panic!("unknown argument {other}; supported: --full, --smoke, --seed <n>")
                }
            }
        }
        cfg
    }

    /// Picks `quick` or `full` depending on the flag.
    #[must_use]
    pub fn pick<T>(&self, quick: T, full: T) -> T {
        if self.full {
            full
        } else {
            quick
        }
    }
}

/// A minimal fixed-width table printer for experiment output.
///
/// ```
/// use hdface_bench::Table;
/// let mut t = Table::new(&["dataset", "accuracy"]);
/// t.row(&[&"EMOTION", &0.93]);
/// let rendered = t.render();
/// assert!(rendered.contains("EMOTION"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    #[must_use]
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; values are rendered with `Display`.
    ///
    /// # Panics
    ///
    /// Panics when the value count does not match the header count.
    pub fn row(&mut self, values: &[&dyn Display]) {
        assert_eq!(
            values.len(),
            self.headers.len(),
            "row length does not match header count"
        );
        self.rows
            .push(values.iter().map(|v| format!("{v}")).collect());
    }

    /// Renders the table with aligned columns.
    #[must_use]
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let sep = |out: &mut String| {
            for w in &widths {
                out.push('+');
                out.push_str(&"-".repeat(w + 2));
            }
            out.push_str("+\n");
        };
        sep(&mut out);
        for (w, h) in widths.iter().zip(&self.headers) {
            out.push_str(&format!("| {h:>w$} "));
        }
        out.push_str("|\n");
        sep(&mut out);
        for row in &self.rows {
            for (w, cell) in widths.iter().zip(row) {
                out.push_str(&format!("| {cell:>w$} "));
            }
            out.push_str("|\n");
        }
        sep(&mut out);
        out
    }

    /// Prints the rendered table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// One scalar-vs-bit-sliced window-bundling measurement at a fixed
/// dimensionality, produced by [`bench_bundling`] and reported in
/// `BENCH_detector.json`'s `bundling` section.
#[derive(Debug, Clone, Copy)]
pub struct BundlingBench {
    /// Hypervector dimensionality.
    pub dim: usize,
    /// Bound slots folded into each window bundle (cells × bins).
    pub slots: usize,
    /// Windows/sec through the scalar reference path
    /// (`xor` + `Accumulator::add` + `threshold`).
    pub scalar_windows_per_sec: f64,
    /// Windows/sec through the fused kernel path
    /// (`BitSlicedBundler::bind_accumulate` + `threshold`).
    pub bitsliced_windows_per_sec: f64,
    /// Whether both paths produced bit-identical bundles from
    /// identically seeded tie-break RNGs (must always be `true`; the
    /// smoke gate asserts it).
    pub bit_identical: bool,
}

impl BundlingBench {
    /// Kernel speedup over the scalar reference (>1 is faster).
    #[must_use]
    pub fn speedup(&self) -> f64 {
        self.bitsliced_windows_per_sec / self.scalar_windows_per_sec
    }
}

/// Measures window-bundling throughput — the `bind` + `accumulate` +
/// `threshold` inner loop of window encoding — through the scalar
/// `Accumulator` reference and the fused `BitSlicedBundler` kernel on
/// the same synthetic slot/key stream, and cross-checks that both
/// produce bit-identical bundles. `windows` full bundles are timed per
/// path after one warm-up window each.
#[must_use]
pub fn bench_bundling(dim: usize, slots: usize, windows: usize, seed: u64) -> BundlingBench {
    use hdface::hdc::{Accumulator, BitSlicedBundler, BitVector};
    use std::hint::black_box;
    use std::time::Instant;

    let mut rng = HdcRng::seed_from_u64(seed);
    let values: Vec<BitVector> = (0..slots)
        .map(|_| BitVector::random(dim, &mut rng))
        .collect();
    let keys: Vec<BitVector> = (0..slots)
        .map(|_| BitVector::random(dim, &mut rng))
        .collect();
    // Both paths resolve majority ties from identically seeded RNGs so
    // the outputs must match bit for bit.
    let tie_seed = seed ^ 0x7ead;

    let scalar_window = |tie_rng: &mut HdcRng| -> BitVector {
        let mut acc = Accumulator::new(dim);
        for (v, k) in values.iter().zip(&keys) {
            acc.add(&v.xor(k).expect("dims equal")).expect("dims equal");
        }
        acc.threshold(tie_rng)
    };
    let mut bundler = BitSlicedBundler::new(dim);
    let kernel_window = |bundler: &mut BitSlicedBundler, tie_rng: &mut HdcRng| -> BitVector {
        bundler.reset(dim);
        for (v, k) in values.iter().zip(&keys) {
            bundler.bind_accumulate(v, k).expect("dims equal");
        }
        bundler.threshold(tie_rng)
    };

    let bit_identical = scalar_window(&mut HdcRng::seed_from_u64(tie_seed))
        == kernel_window(&mut bundler, &mut HdcRng::seed_from_u64(tie_seed));

    let mut tie_rng = HdcRng::seed_from_u64(tie_seed);
    let start = Instant::now();
    for _ in 0..windows {
        black_box(scalar_window(&mut tie_rng));
    }
    let scalar_secs = start.elapsed().as_secs_f64();

    let mut tie_rng = HdcRng::seed_from_u64(tie_seed);
    let start = Instant::now();
    for _ in 0..windows {
        black_box(kernel_window(&mut bundler, &mut tie_rng));
    }
    let kernel_secs = start.elapsed().as_secs_f64();

    BundlingBench {
        dim,
        slots,
        scalar_windows_per_sec: windows as f64 / scalar_secs.max(1e-12),
        bitsliced_windows_per_sec: windows as f64 / kernel_secs.max(1e-12),
        bit_identical,
    }
}

/// One classification-kernel measurement at a fixed dimensionality,
/// produced by [`bench_classify`] and reported in
/// `BENCH_detector.json`'s `classify` section: the same top-2 Hamming
/// search through the scalar kernel per window, the runtime-dispatched
/// SIMD kernel per window, and the blocked batch kernel.
#[derive(Debug, Clone, Copy)]
pub struct ClassifyBench {
    /// Hypervector dimensionality.
    pub dim: usize,
    /// Class hypervectors searched per window.
    pub classes: usize,
    /// Windows classified per timed pass.
    pub windows: usize,
    /// The SIMD backend the dispatcher picked (what "simd" below ran
    /// on; equals `"scalar"` when the CPU offers nothing better).
    pub backend: &'static str,
    /// Windows/sec, one `hamming_top2` call per window on the scalar
    /// kernel.
    pub scalar_windows_per_sec: f64,
    /// Windows/sec, one `hamming_top2` call per window on the
    /// dispatched SIMD kernel.
    pub simd_windows_per_sec: f64,
    /// Windows/sec through one blocked `hamming_top2_block` call over
    /// the whole batch on the dispatched SIMD kernel.
    pub batch_windows_per_sec: f64,
    /// Whether all three paths returned identical top-2 results (must
    /// always be `true`; the smoke gate asserts it).
    pub bit_identical: bool,
}

impl ClassifyBench {
    /// Batched-SIMD speedup over the per-window scalar kernel (>1 is
    /// faster) — the headline ratio of the classify section.
    #[must_use]
    pub fn batch_speedup(&self) -> f64 {
        self.batch_windows_per_sec / self.scalar_windows_per_sec
    }

    /// Per-window SIMD speedup over the per-window scalar kernel.
    #[must_use]
    pub fn simd_speedup(&self) -> f64 {
        self.simd_windows_per_sec / self.scalar_windows_per_sec
    }
}

/// Measures classification-kernel throughput — the top-2
/// Hamming-distance search at the heart of window scoring — through
/// three paths over identical inputs: per-window scalar, per-window
/// dispatched SIMD, and the blocked batch kernel. Cross-checks that
/// all three report identical winners and distances (they must: every
/// path sums the same integer popcounts). One untimed warm-up pass
/// per path.
#[must_use]
pub fn bench_classify(dim: usize, classes: usize, windows: usize, seed: u64) -> ClassifyBench {
    use hdface::hdc::{
        detected_backend, hamming_top2_block_with, hamming_top2_with, BitVector, HammingTop2,
        SimdBackend,
    };
    use std::hint::black_box;
    use std::time::Instant;

    let mut rng = HdcRng::seed_from_u64(seed);
    let cands: Vec<BitVector> = (0..classes)
        .map(|_| BitVector::random(dim, &mut rng))
        .collect();
    let queries: Vec<BitVector> = (0..windows)
        .map(|_| BitVector::random(dim, &mut rng))
        .collect();
    let query_refs: Vec<&BitVector> = queries.iter().collect();
    let backend = detected_backend();

    let per_window = |b: SimdBackend| -> Vec<Option<HammingTop2>> {
        queries
            .iter()
            .map(|q| hamming_top2_with(b, q, &cands).expect("dims equal"))
            .collect()
    };
    let batched = || -> Vec<Option<HammingTop2>> {
        hamming_top2_block_with(backend, &query_refs, &cands).expect("dims equal")
    };

    let scalar_out = per_window(SimdBackend::Scalar);
    let bit_identical = scalar_out == per_window(backend) && scalar_out == batched();

    // Best of three timed passes after one warm-up: single passes on
    // a busy machine are noisy enough to flip speedup ratios.
    let time = |f: &dyn Fn() -> Vec<Option<HammingTop2>>| -> f64 {
        black_box(f());
        let mut best = f64::INFINITY;
        for _ in 0..3 {
            let start = Instant::now();
            black_box(f());
            best = best.min(start.elapsed().as_secs_f64());
        }
        windows as f64 / best.max(1e-12)
    };

    ClassifyBench {
        dim,
        classes,
        windows,
        backend: backend.name(),
        scalar_windows_per_sec: time(&|| per_window(SimdBackend::Scalar)),
        simd_windows_per_sec: time(&|| per_window(backend)),
        batch_windows_per_sec: time(&batched),
        bit_identical,
    }
}

/// One serving-layer measurement produced by [`bench_serve`] and
/// reported in `BENCH_detector.json`'s `serve` section: the same
/// `/classify` workload driven through `hdface loadgen` twice — once
/// over keep-alive connections, once reconnecting per request — so
/// the ratio isolates what connection reuse plus `/classify`
/// micro-batching buy over close-per-request serving.
#[derive(Debug, Clone, Copy)]
pub struct ServeBench {
    /// Concurrent connections driven in each run.
    pub connections: usize,
    /// Successful requests/sec with `Connection: keep-alive`.
    pub keepalive_rps: f64,
    /// Successful requests/sec with `Connection: close`.
    pub close_rps: f64,
    /// `2xx` responses in the keep-alive run.
    pub keepalive_ok: u64,
    /// `2xx` responses in the close-per-request run.
    pub close_ok: u64,
    /// Keep-alive run latency median (µs, bucket upper bound).
    pub keepalive_p50_micros: Option<u64>,
    /// Keep-alive run latency p99 (µs, bucket upper bound).
    pub keepalive_p99_micros: Option<u64>,
    /// Close-per-request run latency median (µs).
    pub close_p50_micros: Option<u64>,
    /// Close-per-request run latency p99 (µs).
    pub close_p99_micros: Option<u64>,
    /// Whether both runs were clean: zero non-shed `5xx` and zero
    /// framing errors (the smoke gate asserts it).
    pub clean: bool,
}

impl ServeBench {
    /// Keep-alive RPS over close-per-request RPS (>1 is faster) —
    /// the headline ratio of the serve section.
    #[must_use]
    pub fn speedup(&self) -> f64 {
        self.keepalive_rps / self.close_rps.max(f64::EPSILON)
    }
}

/// Measures served `/classify` throughput keep-alive vs
/// close-per-request: trains a small fast pipeline (classic HOG +
/// projection encoder), boots an in-process [`hdface::serve::Server`]
/// on an ephemeral port with one worker per connection and
/// micro-batching enabled, and drives it with
/// [`hdface::loadgen::run`] for `duration` per mode after a short
/// warm-up. Both runs share the server, the model and the request
/// body; only the client's `Connection:` header differs.
#[must_use]
pub fn bench_serve(connections: usize, duration: std::time::Duration, seed: u64) -> ServeBench {
    use hdface::detector::{DetectorConfig, FaceDetector};
    use hdface::engine::Engine;
    use hdface::imaging::{write_pgm, GrayImage};
    use hdface::learn::TrainConfig;
    use hdface::loadgen::{self, LoadgenConfig};
    use hdface::pipeline::{HdFeatureMode, HdPipeline};
    use hdface::serve::{ServeConfig, Server};

    // A 16-pixel window keeps per-request HOG cost small enough that
    // the serving layer (connection lifecycle, parsing, batching) is
    // a meaningful share of each request rather than being buried
    // under extraction cost.
    const WIN: usize = 16;
    let connections = connections.max(1);
    let data = face2_spec().at_size(WIN).scaled(24).generate(seed);
    let mut pipeline = HdPipeline::new(HdFeatureMode::encoded_classic(512), seed);
    pipeline
        .train(&data, &TrainConfig::single_pass())
        .expect("training the serve-bench model");
    let detector = FaceDetector::new(pipeline, DetectorConfig::default());
    let handle = Server::start(
        detector,
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            // One worker per connection: a keep-alive connection pins
            // its worker between requests, so fewer workers than
            // connections would measure queueing, not the protocol.
            workers: connections,
            queue_depth: connections * 2,
            engine: Engine::new(1),
            max_batch: 1,
            max_batch_delay_us: 200,
            ..ServeConfig::default()
        },
    )
    .expect("serve-bench server starts");

    // One window-sized crop: the smallest request that still runs the
    // full extract + classify path.
    let crop = GrayImage::from_fn(WIN, WIN, |x, y| {
        0.5 + 0.4 * ((x as f32 * 0.43).sin() * (y as f32 * 0.29).cos())
    });
    let mut body = Vec::new();
    write_pgm(&crop, &mut body).expect("serializing the bench crop");

    let base = LoadgenConfig {
        addr: handle.addr().to_string(),
        connections,
        duration,
        rate: None,
        keep_alive: true,
        method: "POST".into(),
        path: "/classify".into(),
        body,
    };
    // Warm-up: fault in code paths and slot keys so neither timed run
    // pays first-request costs.
    let _ = loadgen::run(&LoadgenConfig {
        connections: connections.min(4),
        duration: std::time::Duration::from_millis(250),
        ..base.clone()
    });
    let keepalive = loadgen::run(&base);
    let close = loadgen::run(&LoadgenConfig {
        keep_alive: false,
        ..base
    });
    handle.shutdown();

    ServeBench {
        connections,
        keepalive_rps: keepalive.achieved_rps,
        close_rps: close.achieved_rps,
        keepalive_ok: keepalive.ok,
        close_ok: close.ok,
        keepalive_p50_micros: keepalive.p50_micros,
        keepalive_p99_micros: keepalive.p99_micros,
        close_p50_micros: close.p50_micros,
        close_p99_micros: close.p99_micros,
        clean: keepalive.clean() && close.clean(),
    }
}

/// Formats a fraction as a percentage with one decimal.
#[must_use]
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Formats a ratio as `N.N×`.
#[must_use]
pub fn times(x: f64) -> String {
    format!("{x:.1}x")
}

/// Formats seconds adaptively (µs/ms/s).
#[must_use]
pub fn secs(s: f64) -> String {
    if s < 1e-3 {
        format!("{:.1}us", s * 1e6)
    } else if s < 1.0 {
        format!("{:.1}ms", s * 1e3)
    } else {
        format!("{s:.2}s")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["a", "bbbb"]);
        t.row(&[&1, &"x"]);
        t.row(&[&100, &"yy"]);
        let r = t.render();
        assert!(r.contains("| 100 |"));
        assert!(r.lines().count() >= 6);
    }

    #[test]
    #[should_panic(expected = "row length")]
    fn table_rejects_ragged_rows() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&[&1]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(0.934), "93.4%");
        assert_eq!(times(6.12), "6.1x");
        assert_eq!(secs(0.0000005), "0.5us");
        assert_eq!(secs(0.25), "250.0ms");
        assert_eq!(secs(3.0), "3.00s");
    }

    #[test]
    fn bundling_bench_paths_agree_bit_for_bit() {
        // Odd dim exercises the padding-word tail; tiny sizes keep the
        // test fast while still timing both paths.
        let b = bench_bundling(130, 9, 3, 42);
        assert!(b.bit_identical);
        assert_eq!((b.dim, b.slots), (130, 9));
        assert!(b.scalar_windows_per_sec > 0.0);
        assert!(b.bitsliced_windows_per_sec > 0.0);
        assert!(b.speedup() > 0.0);
    }

    #[test]
    fn classify_bench_paths_agree_bit_for_bit() {
        // Odd dim exercises the padding-word tail of every kernel;
        // tiny sizes keep the test fast while still timing all paths.
        let b = bench_classify(197, 5, 9, 7);
        assert!(b.bit_identical);
        assert_eq!((b.dim, b.classes, b.windows), (197, 5, 9));
        assert!(!b.backend.is_empty());
        assert!(b.scalar_windows_per_sec > 0.0);
        assert!(b.simd_windows_per_sec > 0.0);
        assert!(b.batch_windows_per_sec > 0.0);
        assert!(b.batch_speedup() > 0.0 && b.simd_speedup() > 0.0);
    }

    #[test]
    fn serve_bench_measures_both_modes_cleanly() {
        // Tiny run: 2 connections for 300ms per mode is enough to get
        // nonzero throughput in both and prove the harness wiring.
        let s = bench_serve(2, std::time::Duration::from_millis(300), 11);
        assert_eq!(s.connections, 2);
        assert!(s.clean, "serve bench saw 5xx or framing errors: {s:?}");
        assert!(s.keepalive_ok > 0 && s.close_ok > 0, "{s:?}");
        assert!(s.keepalive_rps > 0.0 && s.close_rps > 0.0, "{s:?}");
        assert!(s.speedup() > 0.0);
    }

    #[test]
    fn hard_face_dataset_mixes_scrambled_negatives() {
        let ds = hard_face_dataset(24, 40, 1);
        assert_eq!(ds.len(), 40);
        assert_eq!(ds.class_counts(), vec![20, 20]);
        assert_eq!(ds.name(), "FACE2+hard-negatives");
        // Half the negatives are replaced: positions 0 and 2 of every
        // four-sample block were regenerated, so they must differ from
        // the plain generator's output.
        let plain = hdface::datasets::face2_spec()
            .at_size(24)
            .scaled(40)
            .generate(1);
        let replaced = ds
            .iter()
            .zip(plain.iter())
            .filter(|(a, b)| a.image != b.image)
            .count();
        assert!(replaced >= 10, "only {replaced} samples replaced");
        // Deterministic.
        let again = hard_face_dataset(24, 40, 1);
        assert_eq!(ds.samples()[0].image, again.samples()[0].image);
    }

    #[test]
    fn pick_respects_flag() {
        let quick = RunConfig {
            full: false,
            smoke: false,
            seed: 0,
        };
        let full = RunConfig {
            full: true,
            smoke: false,
            seed: 0,
        };
        assert_eq!(quick.pick(1, 2), 1);
        assert_eq!(full.pick(1, 2), 2);
    }
}
