//! **Fig. 4 reproduction** — classification accuracy of HDFace in its
//! configurations against the DNN and SVM baselines, on all three
//! (synthetic-substitute) datasets with identical HOG geometry.
//!
//! Columns follow the paper's bar groups:
//! * `HDC+HOG(orig)` — classic float HOG + non-linear HDC encoder +
//!   HDC learning (paper configuration 1);
//! * `HDC+HOG(HD)` — the fully hyperdimensional pipeline (stochastic
//!   HOG, no encoder; paper configuration 2);
//! * `DNN` — 4-layer MLP (best 1024×1024-class architecture scaled to
//!   the quick run);
//! * `SVM` — one-vs-rest linear SVM.
//!
//! Paper claims to reproduce: HDC accuracy ≥ DNN > SVM on average, and
//! the stochastic feature extraction matching original-space HOG
//! quality.
//!
//! ```sh
//! cargo run --release -p hdface-bench --bin exp_fig4 [-- --full]
//! ```

use hdface::datasets::{emotion_spec, face1_spec, face2_spec, DatasetSpec};
use hdface::hog::HogConfig;
use hdface::learn::TrainConfig;

const HD_EPOCHS: usize = 10;
use hdface::pipeline::{DnnPipeline, HdFeatureMode, HdPipeline, SvmPipeline};
use hdface_bench::{pct, RunConfig, Table};

fn main() {
    let cfg = RunConfig::from_args();
    // Generation sizes: windows stay small so the stochastic pipeline
    // runs in minutes; --full doubles data and window size.
    let win = cfg.pick(32, 48);
    let dim = 4096;
    let specs: Vec<DatasetSpec> = vec![
        // EMOTION stays at its native 48x48 (expression geometry does
        // not survive harsher downscaling).
        emotion_spec().scaled(cfg.pick(350, 560)),
        face1_spec().at_size(win).scaled(cfg.pick(160, 320)),
        face2_spec().at_size(win).scaled(cfg.pick(160, 320)),
    ];

    println!("== Fig. 4: accuracy vs state-of-the-art (D = {dim}) ==\n");
    let mut table = Table::new(&["dataset", "HDC+HOG(orig)", "HDC+HOG(HD)", "DNN", "SVM"]);
    let mut sums = [0.0f64; 4];

    for spec in &specs {
        let ds = spec.generate(cfg.seed);
        let (train, test) = ds.split(0.75);

        let hd_train = TrainConfig {
            epochs: HD_EPOCHS,
            ..TrainConfig::default()
        };
        let mut enc = HdPipeline::new(HdFeatureMode::encoded_classic(dim), cfg.seed);
        enc.train(&train, &hd_train).expect("train");
        let a_enc = enc.evaluate(&test).expect("eval");

        let mut hd = HdPipeline::new(HdFeatureMode::hyper_hog(dim), cfg.seed);
        hd.train(&train, &hd_train).expect("train");
        let a_hd = hd.evaluate(&test).expect("eval");

        let mut dnn = DnnPipeline::new(
            HogConfig::paper(),
            cfg.pick((256, 256), (1024, 1024)),
            120,
            cfg.seed,
        );
        dnn.train(&train).expect("train");
        let a_dnn = dnn.evaluate(&test).expect("eval");

        let mut svm = SvmPipeline::new(HogConfig::paper(), 40, cfg.seed);
        svm.train(&train).expect("train");
        let a_svm = svm.evaluate(&test).expect("eval");

        for (s, a) in sums.iter_mut().zip([a_enc, a_hd, a_dnn, a_svm]) {
            *s += a;
        }
        table.row(&[
            &spec.name,
            &pct(a_enc),
            &pct(a_hd),
            &pct(a_dnn),
            &pct(a_svm),
        ]);
    }
    let n = specs.len() as f64;
    table.row(&[
        &"average",
        &pct(sums[0] / n),
        &pct(sums[1] / n),
        &pct(sums[2] / n),
        &pct(sums[3] / n),
    ]);
    table.print();

    println!(
        "\nshape check (paper): HDC ≥ DNN on average (paper: +3.9%), DNN > SVM\n\
         (paper: HDC +10.4% over SVM), and the HD-HOG column is within a few\n\
         points of the original-space HOG column (paper: 'same quality').\n\
         note: on these small synthetic sets the linear SVM is unusually\n\
         strong because the classes are clean; the HDC-vs-DNN ordering is\n\
         the paper-relevant comparison."
    );
}
