//! **Feature-family comparison** — HOG vs LBP vs HAAR-like on the
//! face-detection workload, with both an SVM and an HDC learner per
//! family.
//!
//! The paper's §2 frames these three families as the standard
//! face-detection extractors and cites their head-to-head comparisons
//! (refs \[8\], \[10\]); this experiment reruns that comparison inside
//! the reproduction so the choice of HOG as the hyperdimensional
//! target is grounded.
//!
//! ```sh
//! cargo run --release -p hdface-bench --bin exp_extractors [-- --full]
//! ```

use hdface::baselines::{LinearSvm, SvmConfig};
use hdface::datasets::Dataset;
use hdface::hdc::{BitVector, HdcRng, SeedableRng};
use hdface::hog::{ClassicHog, HaarBank, HogConfig, Lbp, LbpConfig};
use hdface::learn::{FeatureEncoder, HdClassifier, ProjectionEncoder, TrainConfig};
use hdface_bench::{hard_face_dataset, pct, RunConfig, Table};

const WIN: usize = 32;

/// Extracts a float feature set with a per-family closure.
fn featurize(
    ds: &Dataset,
    mut f: impl FnMut(&hdface::imaging::GrayImage) -> Vec<f64>,
) -> Vec<(Vec<f64>, usize)> {
    ds.iter()
        .map(|s| (f(&s.image.normalized()), s.label))
        .collect()
}

fn svm_accuracy(train: &[(Vec<f64>, usize)], test: &[(Vec<f64>, usize)], seed: u64) -> f64 {
    let mut best = 0.0f64;
    for &lambda in &[1e-4, 1e-3, 1e-2] {
        let mut cfg = SvmConfig::new(train[0].0.len(), 2);
        cfg.lambda = lambda;
        cfg.seed = seed;
        let mut svm = LinearSvm::new(&cfg);
        svm.fit(train).expect("fit");
        best = best.max(svm.accuracy(test).expect("acc"));
    }
    best
}

fn hdc_accuracy(
    train: &[(Vec<f64>, usize)],
    test: &[(Vec<f64>, usize)],
    dim: usize,
    seed: u64,
) -> f64 {
    let encoder = ProjectionEncoder::new(train[0].0.len(), dim, seed);
    let tr: Vec<(BitVector, usize)> = train
        .iter()
        .map(|(x, y)| (encoder.encode(x).expect("encode"), *y))
        .collect();
    let te: Vec<(BitVector, usize)> = test
        .iter()
        .map(|(x, y)| (encoder.encode(x).expect("encode"), *y))
        .collect();
    let mut clf = HdClassifier::new(2, dim);
    let mut rng = HdcRng::seed_from_u64(seed);
    clf.fit(&tr, &TrainConfig::default(), &mut rng)
        .expect("fit");
    clf.accuracy(&te).expect("acc")
}

fn main() {
    let cfg = RunConfig::from_args();
    let ds = hard_face_dataset(WIN, cfg.pick(240, 400), cfg.seed);
    let (train, test) = ds.split(0.75);
    println!(
        "workload: {} ({} train / {} test at {WIN}x{WIN})\n",
        ds.name(),
        train.len(),
        test.len()
    );

    let hog = ClassicHog::new(HogConfig::paper());
    let lbp = Lbp::new(LbpConfig::default());
    let haar = HaarBank::new(WIN, 8, 8);
    println!(
        "feature lengths: HOG {} | LBP {} | HAAR {}\n",
        hog.config().feature_len(WIN, WIN),
        lbp.feature_len(WIN, WIN),
        haar.len()
    );

    let dim = 4096;
    let mut table = Table::new(&["extractor", "SVM", "HDC (projection, D=4k)"]);
    type Featureset = Vec<(Vec<f64>, usize)>;
    let families: Vec<(&str, Featureset, Featureset)> = vec![
        (
            "HOG",
            featurize(&train, |im| {
                hog.extract_vec(im).iter().map(|v| v * 8.0).collect()
            }),
            featurize(&test, |im| {
                hog.extract_vec(im).iter().map(|v| v * 8.0).collect()
            }),
        ),
        (
            "LBP",
            featurize(&train, |im| lbp.extract(im)),
            featurize(&test, |im| lbp.extract(im)),
        ),
        (
            "HAAR",
            featurize(&train, |im| haar.extract(im)),
            featurize(&test, |im| haar.extract(im)),
        ),
    ];
    for (name, tr, te) in &families {
        table.row(&[
            name,
            &pct(svm_accuracy(tr, te, cfg.seed)),
            &pct(hdc_accuracy(tr, te, dim, cfg.seed)),
        ]);
    }
    table.print();
    println!(
        "\ncontext (paper §2 and its refs [8],[10]): the three families are\n\
         competitive on face detection, with HOG usually at or near the top —\n\
         which is why HDFace builds its hyperdimensional extractor on HOG."
    );
}
