//! **§2 motivation reproduction** — the two observations that motivate
//! HDFace:
//!
//! 1. "HoG takes above 85% of total training time" on the embedded
//!    CPU — measured here with the operation-count CPU model over the
//!    classic HOG + DNN training pipeline.
//! 2. "2% random bit error on HoG feature extraction causes 12%
//!    quality loss, while the HDC model is significantly robust" —
//!    measured by corrupting float HOG features feeding an HDC
//!    learner versus corrupting the HDC model itself.
//!
//! ```sh
//! cargo run --release -p hdface-bench --bin exp_motivation [-- --full]
//! ```

use hdface::datasets::face2_spec;
use hdface::hdc::{BitVector, HdcRng, SeedableRng};
use hdface::hog::{ClassicHog, HogConfig};
use hdface::learn::{FeatureEncoder, HdClassifier, LevelIdEncoder, TrainConfig};
use hdface::noise::BitErrorModel;
use hdface_bench::{pct, RunConfig, Table};
use hdface_hwsim::{classic_hog_ops, dnn_train_epoch_ops, CpuModel, MlpShape, Platform, Scenario};

fn main() {
    let cfg = RunConfig::from_args();

    // ---- 1. HOG share of training time on the embedded CPU --------
    println!("== §2(a): share of training time spent in HOG feature extraction ==\n");
    let cpu = CpuModel::cortex_a53();
    let mut t1 = Table::new(&["dataset", "HOG time", "DNN learn time", "HOG share"]);
    for sc in Scenario::table1() {
        let hog = cpu.execute(
            &(classic_hog_ops(sc.image_size, sc.image_size, sc.bins) * sc.train_size as f64),
        );
        let shape = MlpShape {
            input: sc.hog_features(),
            hidden1: 1024,
            hidden2: 1024,
            output: sc.classes,
        };
        // A realistic embedded budget of a handful of epochs per
        // sweep keeps the HOG fraction in focus (the paper's number
        // is for the full preprocessing-dominated workload).
        let learn = cpu.execute(&(dnn_train_epoch_ops(sc.train_size, &shape) * 1.0));
        let share = hog.seconds / (hog.seconds + learn.seconds);
        t1.row(&[
            &sc.name,
            &format!("{:.1}s", hog.seconds),
            &format!("{:.1}s", learn.seconds),
            &pct(share),
        ]);
    }
    t1.print();
    println!(
        "paper reference: 'HoG takes above 85% of total training time' on the\n\
         ARM A53 (their pipeline is preprocessing-bound; the share depends on\n\
         how many learning epochs amortize it — shown per single epoch here).\n"
    );

    // ---- 2. Float-HOG fragility vs HDC-model robustness ------------
    println!("== §2(b): 2% bit error — float HOG features vs the HDC model ==\n");
    let spec = face2_spec().at_size(32).scaled(cfg.pick(160, 280));
    let ds = spec.generate(cfg.seed);
    let (train, test) = ds.split(0.7);
    let dim = 4096;

    let hog = ClassicHog::new(HogConfig::paper());
    let feats = |d: &hdface::datasets::Dataset| -> Vec<(Vec<f64>, usize)> {
        d.iter()
            .map(|s| {
                let f: Vec<f64> = hog
                    .extract_vec(&s.image.normalized())
                    .iter()
                    .map(|v| v * 8.0)
                    .collect();
                (f, s.label)
            })
            .collect()
    };
    let train_f = feats(&train);
    let test_f = feats(&test);
    let encoder = LevelIdEncoder::new(train_f[0].0.len(), dim, 32, 0.0, 0.8, cfg.seed);
    let train_enc: Vec<(BitVector, usize)> = train_f
        .iter()
        .map(|(x, y)| (encoder.encode(x).expect("encode"), *y))
        .collect();
    let mut clf = HdClassifier::new(ds.num_classes(), dim);
    let mut rng = HdcRng::seed_from_u64(cfg.seed);
    clf.fit(&train_enc, &TrainConfig::default(), &mut rng)
        .expect("fit");
    let binary = clf.to_binary(&mut rng);

    let clean_acc = {
        let mut correct = 0;
        for (x, y) in &test_f {
            if binary
                .predict(&encoder.encode(x).expect("encode"))
                .expect("predict")
                == *y
            {
                correct += 1;
            }
        }
        correct as f64 / test_f.len() as f64
    };

    let mut t2 = Table::new(&["fault site", "clean acc", "acc @2% errors", "quality loss"]);
    // (a) errors on the float HOG feature words.
    let trials = cfg.pick(4, 8);
    let mut acc_float = 0.0;
    for t in 0..trials {
        let mut channel = BitErrorModel::new(0.02, cfg.seed + 31 + t).expect("rate");
        let mut correct = 0;
        for (x, y) in &test_f {
            let noisy = channel.corrupt_f32_features(x);
            if binary
                .predict(&encoder.encode(&noisy).expect("encode"))
                .expect("predict")
                == *y
            {
                correct += 1;
            }
        }
        acc_float += correct as f64 / test_f.len() as f64;
    }
    acc_float /= trials as f64;
    t2.row(&[
        &"float HOG feature words",
        &pct(clean_acc),
        &pct(acc_float),
        &pct(clean_acc - acc_float),
    ]);

    // (b) errors on the HDC model + query hypervectors.
    let mut acc_hd = 0.0;
    for t in 0..trials {
        let mut rng = HdcRng::seed_from_u64(cfg.seed + 61 + t);
        let noisy_model = binary.with_bit_errors(0.02, &mut rng);
        let mut channel = BitErrorModel::new(0.02, cfg.seed + 71 + t).expect("rate");
        let mut correct = 0;
        for (x, y) in &test_f {
            let q = channel.corrupt_hypervector(&encoder.encode(x).expect("encode"));
            if noisy_model.predict(&q).expect("predict") == *y {
                correct += 1;
            }
        }
        acc_hd += correct as f64 / test_f.len() as f64;
    }
    acc_hd /= trials as f64;
    t2.row(&[
        &"HDC model + query hypervectors",
        &pct(clean_acc),
        &pct(acc_hd),
        &pct(clean_acc - acc_hd),
    ]);
    t2.print();
    println!(
        "paper reference: '2% random bit error on HoG feature extraction causes\n\
         12% quality loss, while the HDC model is significantly robust against\n\
         noise' — the float row should lose double digits, the HDC row ≈ nothing."
    );
}
