//! **Table 2 reproduction** — robustness to random bit errors.
//!
//! Fault model: memory faults — every *stored* artifact of the
//! deployed classifier is corrupted once at the given bit-error rate:
//!
//! * `DNN 16/8/4-bit` — the fixed-point weight memory of the MLP
//!   baseline;
//! * `HDFace+HoG+Learn (D = 10k/4k/1k)` — the feature hypervectors
//!   produced by the fully hyperdimensional HOG pipeline *and* the
//!   binary class hypervectors (both are plain bit memories);
//! * `HDFace+Learn (D = 10k/4k/1k)` — HOG on the original float
//!   representation: the IEEE-754 feature words are corrupted before
//!   HDC encoding, plus the same class-hypervector corruption.
//!
//! Entries are **quality loss** relative to the clean reference,
//! matching the paper's table semantics.
//!
//! Paper claims to reproduce: DNN precision trades accuracy for
//! robustness; full-HD HDFace absorbs several percent bit error with
//! ≈0 loss at D ≥ 4k; HOG on the original representation "entirely
//! removes the advantage".
//!
//! ```sh
//! cargo run --release -p hdface-bench --bin exp_table2 [-- --full]
//! ```

use hdface::baselines::{QuantizedMlp, WeightPrecision};
use hdface::hdc::{BitVector, HdcRng, SeedableRng};
use hdface::hog::{ClassicHog, HogConfig, HyperHog, HyperHogConfig};
use hdface::learn::{FeatureEncoder, HdClassifier, LevelIdEncoder, TrainConfig};
use hdface::noise::BitErrorModel;
use hdface::pipeline::DnnPipeline;
use hdface_bench::{RunConfig, Table};

const DIMS: [usize; 3] = [10_240, 4096, 1024];

fn fmt_loss(reference: f64, acc: f64) -> String {
    format!("{:.1}%", (reference - acc).max(0.0) * 100.0)
}

fn push_row(table: &mut Table, cells: &[String]) {
    let refs: Vec<&dyn std::fmt::Display> =
        cells.iter().map(|c| c as &dyn std::fmt::Display).collect();
    table.row(&refs);
}

fn main() {
    let cfg = RunConfig::from_args();
    let rates: &[f64] = cfg.pick(
        &[0.0, 0.02, 0.04, 0.08, 0.14][..],
        &[0.0, 0.01, 0.02, 0.04, 0.08, 0.12, 0.14][..],
    );
    let trials = cfg.pick(4, 8);
    // Hard-negative workload (see hdface_bench::hard_face_dataset):
    // thin margins make fault sensitivity measurable.
    let ds = hdface_bench::hard_face_dataset(32, cfg.pick(200, 320), cfg.seed);
    let (train, test) = ds.split(0.7);
    println!(
        "workload: {} at 32x32, {} train / {} test, {} fault patterns per cell\n",
        ds.name(),
        train.len(),
        test.len(),
        trials
    );

    let mut header: Vec<String> = vec!["model".into()];
    header.extend(rates.iter().map(|r| format!("{:.0}%", r * 100.0)));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut table = Table::new(&header_refs);

    // ---------------- DNN with quantized weights --------------------
    let mut dnn = DnnPipeline::new(HogConfig::paper(), (512, 512), 120, cfg.seed);
    dnn.train(&train).expect("dnn train");
    let dnn_test = dnn.extract_dataset(&test);
    let float_ref = dnn.evaluate(&test).expect("dnn eval");

    for precision in WeightPrecision::ALL {
        let q = QuantizedMlp::from_mlp(dnn.mlp().expect("trained"), precision);
        let mut cells: Vec<String> = vec![format!("DNN {}", precision.name())];
        for (ri, &rate) in rates.iter().enumerate() {
            let mut acc = 0.0;
            for t in 0..trials {
                let mut rng = HdcRng::seed_from_u64(cfg.seed + 100 + (ri * 97 + t * 13) as u64);
                acc += q
                    .with_bit_errors(rate, &mut rng)
                    .accuracy(&dnn_test)
                    .expect("acc");
            }
            cells.push(fmt_loss(float_ref, acc / trials as f64));
        }
        push_row(&mut table, &cells);
    }

    // ------------- HDFace, fully hyperdimensional pipeline ----------
    // Features and models are extracted/trained once per D (clean);
    // faults then strike the stored bit memories.
    let mut hd_reference = 0.0f64;
    let mut hd_rows: Vec<(String, Vec<f64>)> = Vec::new();
    for &dim in &DIMS {
        let mut hog = HyperHog::new(HyperHogConfig::with_dim(dim), cfg.seed);
        let train_feats: Vec<(BitVector, usize)> = train
            .iter()
            .map(|s| {
                (
                    hog.extract(&s.image.normalized()).expect("extract"),
                    s.label,
                )
            })
            .collect();
        let test_feats: Vec<(BitVector, usize)> = test
            .iter()
            .map(|s| {
                (
                    hog.extract(&s.image.normalized()).expect("extract"),
                    s.label,
                )
            })
            .collect();
        let mut clf = HdClassifier::new(ds.num_classes(), dim);
        let mut rng = HdcRng::seed_from_u64(cfg.seed + 7);
        clf.fit(&train_feats, &TrainConfig::default(), &mut rng)
            .expect("fit");
        let binary = clf.to_binary(&mut rng);

        let mut accs = Vec::new();
        for (ri, &rate) in rates.iter().enumerate() {
            let mut acc = 0.0;
            for t in 0..trials {
                let mut mrng = HdcRng::seed_from_u64(cfg.seed + 300 + (ri * 89 + t * 17) as u64);
                let noisy_model = binary.with_bit_errors(rate, &mut mrng);
                let mut channel =
                    BitErrorModel::new(rate, cfg.seed + 500 + (ri * 83 + t * 19) as u64)
                        .expect("rate");
                let noisy_queries = channel.corrupt_hypervector_set(&test_feats);
                acc += noisy_model.accuracy(&noisy_queries).expect("acc");
            }
            accs.push(acc / trials as f64);
        }
        hd_reference = hd_reference.max(accs[0]);
        hd_rows.push((format!("HDFace+HoG+Learn D={}k", dim / 1024), accs));
    }
    for (name, accs) in hd_rows {
        let mut cells = vec![name];
        cells.extend(accs.iter().map(|&a| fmt_loss(hd_reference, a)));
        push_row(&mut table, &cells);
    }

    // -------- HDFace learning on original-representation HOG --------
    let hog = ClassicHog::new(HogConfig::paper());
    let extract = |d: &hdface::datasets::Dataset| -> Vec<(Vec<f64>, usize)> {
        d.iter()
            .map(|s| {
                let f: Vec<f64> = hog
                    .extract_vec(&s.image.normalized())
                    .iter()
                    .map(|v| v * 8.0)
                    .collect();
                (f, s.label)
            })
            .collect()
    };
    let train_float = extract(&train);
    let test_float = extract(&test);

    let mut float_hd_reference = 0.0f64;
    let mut float_rows: Vec<(String, Vec<f64>)> = Vec::new();
    for &dim in &DIMS {
        // The record-based id x level encoder bounds each feature's
        // influence to its own slot, so a corrupted float word cannot
        // poison the whole encoding — the graceful-degradation regime
        // the paper reports for this configuration.
        let encoder = LevelIdEncoder::new(train_float[0].0.len(), dim, 32, 0.0, 0.8, cfg.seed);
        let train_enc: Vec<(BitVector, usize)> = train_float
            .iter()
            .map(|(x, y)| (encoder.encode(x).expect("encode"), *y))
            .collect();
        let mut clf = HdClassifier::new(ds.num_classes(), dim);
        let mut rng = HdcRng::seed_from_u64(cfg.seed + 9);
        clf.fit(&train_enc, &TrainConfig::default(), &mut rng)
            .expect("fit");
        let binary = clf.to_binary(&mut rng);

        let mut accs = Vec::new();
        for (ri, &rate) in rates.iter().enumerate() {
            let mut acc = 0.0;
            for t in 0..trials {
                let mut mrng = HdcRng::seed_from_u64(cfg.seed + 700 + (ri * 79 + t * 23) as u64);
                let noisy_model = binary.with_bit_errors(rate, &mut mrng);
                let mut channel =
                    BitErrorModel::new(rate, cfg.seed + 900 + (ri * 73 + t * 29) as u64)
                        .expect("rate");
                let mut correct = 0usize;
                for (x, y) in &test_float {
                    // The fault sits in the float feature words — the
                    // original-representation memory.
                    let noisy = channel.corrupt_f32_features(x);
                    let feat = encoder.encode(&noisy).expect("encode");
                    if noisy_model.predict(&feat).expect("predict") == *y {
                        correct += 1;
                    }
                }
                acc += correct as f64 / test_float.len() as f64;
            }
            accs.push(acc / trials as f64);
        }
        float_hd_reference = float_hd_reference.max(accs[0]);
        float_rows.push((format!("HDFace+Learn D={}k", dim / 1024), accs));
    }
    for (name, accs) in float_rows {
        let mut cells = vec![name];
        cells.extend(accs.iter().map(|&a| fmt_loss(float_hd_reference, a)));
        push_row(&mut table, &cells);
    }

    table.print();
    println!(
        "\n(entries are quality LOSS vs the clean reference, as in the paper)\n\
         shape checks (paper Table 2):\n\
         * DNN: higher precision = higher clean accuracy but steeper loss under\n\
           errors (paper: 16-bit loses 39.8% at 14%).\n\
         * HDFace+HoG+Learn: near-zero loss through 4-8% error at D ≥ 4k;\n\
           smaller D trades accuracy and robustness (paper D=1k: 2.8% clean gap).\n\
         * HDFace+Learn on original-representation HOG degrades steeply —\n\
           'processing feature extraction on original data representation\n\
           entirely removes the advantage'."
    );
}
