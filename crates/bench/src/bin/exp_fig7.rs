//! **Fig. 7 reproduction** — speedup and energy efficiency of HDFace
//! relative to the DNN baseline on the embedded CPU (ARM Cortex-A53
//! class) and FPGA (Kintex-7 class) platform models, for training and
//! inference on all three Table 1 workloads at paper-nominal scale.
//!
//! The platforms are analytic operation-count models (`hdface-hwsim`,
//! see DESIGN.md §2): ratios emerge from the operation mixes, not from
//! wall-clock measurements of this machine.
//!
//! Paper numbers to compare: training 6.1×/3.0× (CPU speedup/energy)
//! and 4.6×/12.1× (FPGA); inference 1.4×/1.7× (CPU) and 2.9×/2.6×
//! (FPGA).
//!
//! ```sh
//! cargo run --release -p hdface-bench --bin exp_fig7
//! ```

use hdface_bench::{secs, times, Table};
use hdface_hwsim::{CpuModel, FpgaModel, Phase, Platform, Scenario};

fn geo_mean(xs: &[f64]) -> f64 {
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

fn phase_table(platforms: &[&dyn Platform], phase: Phase, label: &str, paper: &str) {
    println!("== Fig. 7 {label} ==\n");
    let mut table = Table::new(&[
        "dataset",
        "platform",
        "HDFace",
        "DNN",
        "speedup",
        "energy gain",
    ]);
    for platform in platforms {
        let mut speedups = Vec::new();
        let mut gains = Vec::new();
        for sc in Scenario::table1() {
            let row = sc.compare(*platform, phase);
            speedups.push(row.speedup);
            gains.push(row.energy_gain);
            table.row(&[
                &row.dataset,
                &row.platform,
                &format!("{} / {:.2}J", secs(row.hdface.seconds), row.hdface.joules),
                &format!("{} / {:.2}J", secs(row.dnn.seconds), row.dnn.joules),
                &times(row.speedup),
                &times(row.energy_gain),
            ]);
        }
        table.row(&[
            &"geo-mean",
            &platform.name(),
            &"",
            &"",
            &times(geo_mean(&speedups)),
            &times(geo_mean(&gains)),
        ]);
    }
    table.print();
    println!("paper reference: {paper}\n");
}

fn main() {
    let cpu = CpuModel::cortex_a53();
    let fpga = FpgaModel::kintex7();
    let platforms: [&dyn Platform; 2] = [&cpu, &fpga];

    phase_table(
        &platforms,
        Phase::Training,
        "(a) full training (feature extraction + all learning epochs)",
        "training: CPU 6.1x speedup / 3.0x energy; FPGA 4.6x / 12.1x",
    );
    phase_table(
        &platforms,
        Phase::TrainingEpoch,
        "(a') one learning epoch over cached features (the paper's per-epoch metric)",
        "paper 6.3: one HDFace epoch 0.9s vs one DNN epoch 5.4s on the embedded CPU (6x)",
    );
    phase_table(
        &platforms,
        Phase::InferenceCached,
        "(b') per-query model inference over cached features (query vs forward pass)",
        "brackets the paper's inference claim from above (see EXPERIMENTS.md)",
    );
    phase_table(
        &platforms,
        Phase::Inference,
        "(b) per-query inference (feature extraction + model query)",
        "inference: CPU 1.4x speedup / 1.7x energy; FPGA 2.9x / 2.6x",
    );

    println!(
        "shape checks (paper Fig. 7): HDFace wins training on both platforms;\n\
         the FPGA energy gap exceeds the CPU energy gap (LUT-parallel bitwise\n\
         work vs DSP-bound MACs); training advantages exceed inference\n\
         advantages. Divergence: with the full stochastic extractor in the\n\
         loop, per-query CPU inference does NOT favor HDFace in our model —\n\
         see EXPERIMENTS.md for the reconciliation analysis."
    );
}
