//! **Design-choice ablations** (DESIGN.md §6) — quantifies each
//! engineering decision the reproduction documents:
//!
//! 1. **Correlation-safe squaring** — `V ⊗ V` of the same instance
//!    collapses to 1; resampling restores `a²`.
//! 2. **Square-root iteration budget** — bisection accuracy vs cost.
//! 3. **Adaptive vs naive training** — similarity-scaled updates vs
//!    plain bundling.
//! 4. **Quantized vs stochastic slot assembly** — the repeat-
//!    extraction kernel strength of the two feature assemblies.
//! 5. **Readout vs running-average histogram accumulation** — slot
//!    noise of the two accumulation modes.
//!
//! ```sh
//! cargo run --release -p hdface-bench --bin exp_ablation [-- --full]
//! ```

use hdface::datasets::face2_spec;
use hdface::hdc::{HdcRng, SeedableRng};
use hdface::hog::{Accumulation, Assembly, HyperHog, HyperHogConfig};
use hdface::learn::{HdClassifier, TrainConfig};
use hdface::stochastic::StochasticContext;
use hdface_bench::{pct, RunConfig, Table};

fn main() {
    let cfg = RunConfig::from_args();
    let dim = 4096;

    // ---------------- 1. correlation-safe squaring ------------------
    println!("== ablation 1: self-multiplication without resampling ==\n");
    let mut ctx = StochasticContext::new(16_384, cfg.seed);
    let mut t1 = Table::new(&["a", "exact a^2", "V (x) V (naive)", "square() (resampled)"]);
    for &a in &[-0.8, -0.3, 0.0, 0.4, 0.9] {
        let v = ctx.encode(a).expect("encode");
        let naive = ctx.mul(&v, &v).expect("mul");
        let proper = ctx.square(&v).expect("square");
        t1.row(&[
            &format!("{a:+.1}"),
            &format!("{:.3}", a * a),
            &format!("{:+.3}", ctx.decode(&naive).expect("decode")),
            &format!("{:+.3}", ctx.decode(&proper).expect("decode")),
        ]);
    }
    t1.print();
    println!("naive self-multiplication always decodes to 1.0 — the documented pitfall.\n");

    // ---------------- 2. sqrt iteration budget ----------------------
    println!("== ablation 2: square-root bisection budget ==\n");
    let mut t2 = Table::new(&["iterations", "mean |error| over [0,1] grid"]);
    for iters in [1usize, 2, 4, 6, 8, 12] {
        let grid = cfg.pick(9, 17);
        let mut err = 0.0;
        for i in 0..grid {
            let x = i as f64 / (grid - 1) as f64;
            let v = ctx.encode(x).expect("encode");
            let r = ctx.sqrt_with_iters(&v, iters).expect("sqrt");
            err += (ctx.decode(&r).expect("decode") - x.sqrt()).abs();
        }
        t2.row(&[&iters, &format!("{:.4}", err / grid as f64)]);
    }
    t2.print();
    println!("6 iterations reach the decode noise floor; more buys nothing.\n");

    // ------- shared dataset for the pipeline-level ablations --------
    let ds = face2_spec()
        .at_size(32)
        .scaled(cfg.pick(160, 280))
        .generate(cfg.seed);
    let (train, test) = ds.split(0.75);

    // ---------------- 3. adaptive vs naive training -----------------
    println!("== ablation 3: adaptive vs naive class-hypervector training ==\n");
    let mut hog = HyperHog::new(HyperHogConfig::with_dim(dim), cfg.seed);
    let train_feats: Vec<_> = train
        .iter()
        .map(|s| {
            (
                hog.extract(&s.image.normalized()).expect("extract"),
                s.label,
            )
        })
        .collect();
    let test_feats: Vec<_> = test
        .iter()
        .map(|s| {
            (
                hog.extract(&s.image.normalized()).expect("extract"),
                s.label,
            )
        })
        .collect();
    let mut t3 = Table::new(&["training rule", "train acc", "test acc"]);
    for (name, tc) in [
        ("naive bundling (1 pass)", TrainConfig::naive()),
        ("adaptive single-pass", TrainConfig::single_pass()),
        ("adaptive + retraining", TrainConfig::default()),
    ] {
        let mut clf = HdClassifier::new(ds.num_classes(), dim);
        let mut rng = HdcRng::seed_from_u64(cfg.seed);
        clf.fit(&train_feats, &tc, &mut rng).expect("fit");
        t3.row(&[
            &name,
            &pct(clf.accuracy(&train_feats).expect("acc")),
            &pct(clf.accuracy(&test_feats).expect("acc")),
        ]);
    }
    t3.print();
    println!("the paper's adaptive rule avoids the saturation of naive bundling.\n");

    // ------------- 4. assembly + 5. accumulation modes --------------
    println!("== ablations 4 & 5: slot assembly and histogram accumulation ==\n");
    let mut t45 = Table::new(&[
        "assembly",
        "accumulation",
        "repeat-extraction similarity",
        "test acc",
    ]);
    for (assembly, accumulation) in [
        (Assembly::Quantized, Accumulation::Readout),
        (Assembly::Quantized, Accumulation::RunningAverage),
        (Assembly::Stochastic, Accumulation::Readout),
        (Assembly::Stochastic, Accumulation::RunningAverage),
    ] {
        let config = HyperHogConfig::with_dim(dim)
            .with_assembly(assembly)
            .with_accumulation(accumulation);
        let mut hog = HyperHog::new(config, cfg.seed);

        // Kernel strength: similarity between two extractions of the
        // same image.
        let img = &train.samples()[1].image.normalized();
        let fa = hog.extract(img).expect("extract");
        let fb = hog.extract(img).expect("extract");
        let repeat_sim = fa.similarity(&fb).expect("sim");

        let train_feats: Vec<_> = train
            .iter()
            .map(|s| {
                (
                    hog.extract(&s.image.normalized()).expect("extract"),
                    s.label,
                )
            })
            .collect();
        let test_feats: Vec<_> = test
            .iter()
            .map(|s| {
                (
                    hog.extract(&s.image.normalized()).expect("extract"),
                    s.label,
                )
            })
            .collect();
        let mut clf = HdClassifier::new(ds.num_classes(), dim);
        let mut rng = HdcRng::seed_from_u64(cfg.seed);
        clf.fit(&train_feats, &TrainConfig::default(), &mut rng)
            .expect("fit");
        t45.row(&[
            &format!("{assembly:?}"),
            &format!("{accumulation:?}"),
            &format!("{repeat_sim:.3}"),
            &pct(clf.accuracy(&test_feats).expect("acc")),
        ]);
    }
    t45.print();
    println!(
        "quantized slot codebooks give a strong deterministic kernel; popcount\n\
         read-out accumulation averages per-pixel noise by sqrt(count). The\n\
         stochastic/running-average corner is the literal-paper-text pipeline."
    );
}
