//! **Table 1 reproduction** — the three evaluation datasets. Prints
//! the paper-nominal shapes next to the synthetic-substitute shapes
//! actually generated (see `DESIGN.md` §2 for the substitution
//! rationale), and verifies each generated set is balanced and
//! class-complete.
//!
//! ```sh
//! cargo run --release -p hdface-bench --bin exp_table1 [-- --full]
//! ```

use hdface_bench::{RunConfig, Table};
use hdface_datasets::TABLE1;

fn main() {
    let cfg = RunConfig::from_args();
    println!("== Table 1: datasets (paper-nominal vs generated substitute) ==\n");
    let mut table = Table::new(&[
        "dataset",
        "n (paper)",
        "k",
        "train size (paper)",
        "n (generated)",
        "samples (generated)",
        "balanced",
    ]);
    for spec_fn in TABLE1 {
        let spec = spec_fn();
        let spec = if cfg.full {
            spec.scaled(spec.sample_count * 4)
        } else {
            spec
        };
        let ds = spec.generate(cfg.seed);
        let counts = ds.class_counts();
        let balanced = counts.iter().max() == counts.iter().min()
            || counts.iter().max().unwrap() - counts.iter().min().unwrap() <= 1;
        table.row(&[
            &spec.name,
            &format!("{0}x{0}", spec.nominal_image_size),
            &spec.num_classes,
            &spec.nominal_train_size,
            &format!("{0}x{0}", spec.image_size),
            &ds.len(),
            &balanced,
        ]);
    }
    table.print();
    println!(
        "\npaper reference (Table 1): EMOTION 48x48/7/36,685; FACE1 1024x1024/2/40,172;\n\
         FACE2 512x512/2/522,441. Generated substitutes keep n and k semantics; sample\n\
         counts are laptop-scale by default (procedural generators extrapolate freely)."
    );
}
