//! **Fig. 5 reproduction** — (a) the impact of hypervector
//! dimensionality on HDFace accuracy and training time; (b) the
//! impact of the DNN's hidden-layer configuration on its accuracy and
//! training time.
//!
//! Paper claims to reproduce: HDC accuracy rises with dimensionality
//! and saturates (paper: maximum at D = 4k); the DNN peaks at
//! 1024×1024 hidden layers; an HDFace training epoch is several times
//! cheaper than a DNN epoch (paper: 0.9 s vs 5.4 s).
//!
//! ```sh
//! cargo run --release -p hdface-bench --bin exp_fig5 [-- --full]
//! ```

use std::time::Instant;

use hdface::hog::HogConfig;
use hdface::learn::TrainConfig;
use hdface::pipeline::{DnnPipeline, HdFeatureMode, HdPipeline};
use hdface_bench::{pct, secs, RunConfig, Table};

fn main() {
    let cfg = RunConfig::from_args();
    // Face detection at a reduced window is the workload: it is the
    // task whose accuracy-vs-D knee the stochastic pipeline exhibits
    // clearly (see EXPERIMENTS.md for the emotion-task discussion).
    let win = cfg.pick(32, 48);
    // Fig. 5a uses the plain detection task, where the stochastic
    // pipeline's accuracy-vs-D knee shows cleanly; Fig. 5b uses the
    // hard-negative variant so the DNN architecture sweep is not
    // saturated from the start.
    let ds = hdface::datasets::face2_spec()
        .at_size(win)
        .scaled(cfg.pick(240, 400))
        .generate(cfg.seed);
    let (train, test) = ds.split(0.75);
    let ds_hard = hdface_bench::hard_face_dataset(win, cfg.pick(240, 400), cfg.seed);
    let (train_hard, test_hard) = ds_hard.split(0.75);
    println!(
        "workloads: {} and {} ({} train / {} test at {win}x{win})\n",
        ds.name(),
        ds_hard.name(),
        train.len(),
        test.len(),
    );

    // ---------------- Fig. 5a: dimensionality sweep ----------------
    println!("== Fig. 5a: HDFace accuracy & training time vs dimensionality ==\n");
    let dims: &[usize] = cfg.pick(
        &[1024, 2048, 4096, 6144, 8192, 10240][..],
        &[512, 1024, 2048, 4096, 6144, 8192, 10240][..],
    );
    let mut t5a = Table::new(&["D", "accuracy", "feature+train time", "learn-epoch time"]);
    for &dim in dims {
        let mut p = HdPipeline::new(HdFeatureMode::hyper_hog(dim), cfg.seed);
        let t0 = Instant::now();
        let features = p.extract_dataset(&train).expect("extract");
        let t_feat = t0.elapsed();
        let t1 = Instant::now();
        p.train_on_features(&features, ds.num_classes(), &TrainConfig::default())
            .expect("train");
        let t_train = t1.elapsed();
        let acc = p.evaluate(&test).expect("eval");
        t5a.row(&[
            &dim,
            &pct(acc),
            &secs(t_feat.as_secs_f64() + t_train.as_secs_f64()),
            &secs(t_train.as_secs_f64() / 3.0), // 3 epochs in default config
        ]);
    }
    t5a.print();
    println!(
        "shape check (paper Fig. 5a): accuracy increases with D and saturates;\n\
         the paper's knee is at 4k, this synthetic workload saturates at 4k-8k.\n"
    );

    // ---------------- Fig. 5b: DNN architecture sweep ---------------
    println!("== Fig. 5b: DNN accuracy & training time vs hidden sizes ==\n");
    let hiddens: &[(usize, usize)] = cfg.pick(
        &[(64, 64), (128, 128), (256, 256), (512, 512), (1024, 1024)][..],
        &[
            (64, 64),
            (128, 128),
            (256, 256),
            (512, 512),
            (1024, 1024),
            (2048, 2048),
        ][..],
    );
    let mut t5b = Table::new(&["hidden layers", "accuracy", "train time (all epochs)"]);
    let epochs = cfg.pick(60, 120);
    for &(h1, h2) in hiddens {
        let mut p = DnnPipeline::new(HogConfig::paper(), (h1, h2), epochs, cfg.seed);
        let t0 = Instant::now();
        p.train(&train_hard).expect("train");
        let t_train = t0.elapsed();
        let acc = p.evaluate(&test_hard).expect("eval");
        t5b.row(&[
            &format!("{h1}x{h2}"),
            &pct(acc),
            &secs(t_train.as_secs_f64()),
        ]);
    }
    t5b.print();
    println!(
        "shape check (paper Fig. 5b): accuracy grows with hidden size then\n\
         saturates near 1024x1024 while training cost keeps climbing; the\n\
         HDFace learn-epoch above is far cheaper than any DNN epoch here\n\
         (paper: 0.9s vs 5.4s per epoch on the embedded CPU)."
    );
}
