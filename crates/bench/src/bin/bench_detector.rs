//! Detection-engine throughput report: scans one scene at D = 1k /
//! 4k / 8k, sweeping thread counts (1 / 2 / 8) and both extraction
//! modes (level-cell cached vs legacy per-window), checks that
//! cached-mode detections are bit-identical at every thread count,
//! reports cache hit/fallback counts, benchmarks the bundling and
//! classification kernels in isolation, measures served `/classify`
//! throughput keep-alive vs close-per-request through a live
//! in-process server, and writes everything to
//! `BENCH_detector.json`.
//!
//! ```sh
//! cargo run --release -p hdface-bench --bin bench_detector [-- --full | --smoke]
//! ```
//!
//! `--smoke` is the CI gate: one small dim, a tiny scene, and hard
//! assertions that cached extraction is at least as fast as
//! per-window, that the fused bundling and batched classification
//! kernels are no slower than their scalar references, and that the
//! blocked and per-window scan modes detect bit-identically (exit 1
//! otherwise, no JSON written).

use std::fmt::Write as _;
use std::process::ExitCode;
use std::time::Instant;

use hdface::datasets::face2_spec;
use hdface::detector::{
    Detection, DetectorConfig, ExtractionMode, FaceDetector, ScanMode, ScanStats,
};
use hdface::engine::Engine;
use hdface::imaging::{GrayImage, ImagePyramid, SlidingWindows};
use hdface::learn::TrainConfig;
use hdface::pipeline::{HdFeatureMode, HdPipeline};
use hdface_bench::{bench_bundling, bench_classify, bench_serve, RunConfig, Table};

const WINDOW: usize = 32;
const STRIDE_FRACTION: f64 = 0.25;

/// Slots folded into each bundling-bench window: 16 HOG cells × 8
/// orientation bins, the shape of one 32×32 detection window.
const BUNDLE_SLOTS: usize = 128;

fn test_scene(n: usize) -> GrayImage {
    GrayImage::from_fn(n, n, |x, y| {
        0.5 + 0.4 * ((x as f32 * 0.43).sin() * (y as f32 * 0.29).cos())
    })
}

/// Number of windows one detect() call scores over `scene`.
fn count_windows(scene: &GrayImage, config: &DetectorConfig) -> usize {
    let stride = ((config.window as f64 * config.stride_fraction).round() as usize).max(1);
    let pyramid =
        ImagePyramid::new(scene, config.pyramid_step, config.window).expect("scene fits a window");
    pyramid
        .iter()
        .map(|l| SlidingWindows::new(&l.image, config.window, config.window, stride).count())
        .sum()
}

/// The thread counts to sweep, unconditionally: [`Engine`] is
/// deliberately uncapped (oversubscription is harmless — workers just
/// time-slice), so the sweep must not be clamped to the machine's
/// core count. An earlier revision filtered by
/// `Engine::from_env().threads()`, which collapsed the sweep to
/// `[1]` on single-core CI runners and left `BENCH_detector.json`
/// with no scaling data at all.
fn thread_sweep() -> Vec<usize> {
    vec![1, 2, 8]
}

/// Best-of-`reps` throughput in windows/second, plus the detections
/// and cache stats of one scan (identical every run — scans are
/// deterministic). One untimed warmup scan first: the initial run
/// pays page-fault and slot-key derivation noise that would otherwise
/// skew whichever configuration is measured first.
fn measure(
    det: &FaceDetector,
    scene: &GrayImage,
    engine: &Engine,
    windows: usize,
    reps: usize,
) -> (f64, Vec<Detection>, ScanStats) {
    det.detect_with(scene, engine)
        .expect("warmup detection succeeds");
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..reps {
        let t = Instant::now();
        let scan = det
            .detect_with_stats(scene, engine)
            .expect("detection succeeds");
        best = best.min(t.elapsed().as_secs_f64());
        out = Some(scan);
    }
    let (detections, stats) = out.expect("at least one rep");
    (windows as f64 / best, detections, stats)
}

fn json_list(values: &[f64]) -> String {
    let cells: Vec<String> = values.iter().map(|v| format!("{v:.2}")).collect();
    format!("[{}]", cells.join(", "))
}

fn main() -> ExitCode {
    let cfg = RunConfig::from_args();
    let scene = test_scene(if cfg.smoke { 48 } else { cfg.pick(80, 128) });
    let reps = if cfg.smoke { 1 } else { cfg.pick(2, 3) };
    let dims: &[usize] = if cfg.smoke {
        &[1024]
    } else {
        &[1024, 4096, 8192]
    };
    let config = DetectorConfig {
        window: WINDOW,
        stride_fraction: STRIDE_FRACTION,
        ..DetectorConfig::default()
    };
    let windows = count_windows(&scene, &config);
    let threads = thread_sweep();

    println!(
        "== detection engine throughput ({}x{} scene, {} windows, threads {threads:?}) ==\n",
        scene.width(),
        scene.height(),
        windows,
    );
    let mut table = Table::new(&[
        "D",
        "threads",
        "cached win/s",
        "per-window win/s",
        "speedup",
        "hits/fallbacks",
        "identical",
    ]);
    let mut entries = String::new();
    let mut smoke_ok = true;

    for &dim in dims {
        let data = face2_spec().at_size(WINDOW).scaled(12).generate(cfg.seed);
        let mut pipeline = HdPipeline::new(HdFeatureMode::hyper_hog(dim), cfg.seed);
        pipeline
            .train(&data, &TrainConfig::single_pass())
            .expect("training");
        let mut det = FaceDetector::new(pipeline, config);

        // Sweep cached mode first across all thread counts, then flip
        // the same detector to per-window; the model (and therefore
        // the detections' meaning) is shared.
        let mut cached_wps = Vec::new();
        let mut cached_scans = Vec::new();
        let mut stats = ScanStats::default();
        det.set_extraction(ExtractionMode::Cached);
        for &n in &threads {
            let (wps, dets, s) = measure(&det, &scene, &Engine::new(n), windows, reps);
            cached_wps.push(wps);
            cached_scans.push(dets);
            stats = s;
        }
        let mut identical = cached_scans.windows(2).all(|pair| pair[0] == pair[1]);

        // The blocked scan (the default above) must detect exactly
        // what per-window scheduling does — one cross-check per dim.
        det.set_scan(ScanMode::PerWindow);
        let (per_window_scan, _) = det
            .detect_with_stats(&scene, &Engine::new(threads[0]))
            .expect("per-window scan succeeds");
        det.set_scan(ScanMode::Blocked);
        identical &= per_window_scan == cached_scans[0];

        let mut pw_wps = Vec::new();
        det.set_extraction(ExtractionMode::PerWindow);
        for &n in &threads {
            let (wps, _, _) = measure(&det, &scene, &Engine::new(n), windows, reps);
            pw_wps.push(wps);
        }

        // Headline ratio: best cached throughput over best per-window
        // throughput across the sweep.
        let best = |v: &[f64]| v.iter().fold(0.0f64, |a, &b| a.max(b));
        let speedup = best(&cached_wps) / best(&pw_wps);
        smoke_ok &= speedup >= 1.0 && identical;

        for (i, &n) in threads.iter().enumerate() {
            table.row(&[
                &dim,
                &n,
                &format!("{:.1}", cached_wps[i]),
                &format!("{:.1}", pw_wps[i]),
                &format!("{:.2}x", cached_wps[i] / pw_wps[i]),
                &format!("{}/{}", stats.cached_windows, stats.fallback_windows),
                &identical,
            ]);
        }

        if !entries.is_empty() {
            entries.push(',');
        }
        write!(
            entries,
            "\n    {{\"dim\": {dim}, \
             \"cached_windows_per_sec\": {}, \
             \"per_window_windows_per_sec\": {}, \
             \"cached_speedup\": {speedup:.3}, \
             \"cache_hits\": {}, \"cache_fallbacks\": {}, \
             \"bit_identical\": {identical}}}",
            json_list(&cached_wps),
            json_list(&pw_wps),
            stats.cached_windows,
            stats.fallback_windows,
        )
        .expect("writing to a String cannot fail");
    }
    table.print();

    // Bundling-kernel microbenchmark: the bind+accumulate+threshold
    // inner loop in isolation, scalar `Accumulator` reference vs the
    // fused bit-sliced kernel the detector now runs.
    let bundle_windows = if cfg.smoke { 30 } else { cfg.pick(100, 300) };
    println!(
        "\n== bundling kernels ({BUNDLE_SLOTS} slots/window, {bundle_windows} windows/path) ==\n"
    );
    let mut btable = Table::new(&[
        "D",
        "scalar win/s",
        "bit-sliced win/s",
        "speedup",
        "identical",
    ]);
    let mut bundling_entries = String::new();
    let mut bundling_ok = true;
    for &dim in dims {
        let b = bench_bundling(dim, BUNDLE_SLOTS, bundle_windows, cfg.seed);
        bundling_ok &= b.bit_identical && b.speedup() >= 1.0;
        btable.row(&[
            &dim,
            &format!("{:.1}", b.scalar_windows_per_sec),
            &format!("{:.1}", b.bitsliced_windows_per_sec),
            &format!("{:.2}x", b.speedup()),
            &b.bit_identical,
        ]);
        if !bundling_entries.is_empty() {
            bundling_entries.push(',');
        }
        write!(
            bundling_entries,
            "\n    {{\"dim\": {dim}, \"slots\": {BUNDLE_SLOTS}, \
             \"scalar_windows_per_sec\": {:.2}, \
             \"bitsliced_windows_per_sec\": {:.2}, \
             \"speedup\": {:.3}, \"bit_identical\": {}}}",
            b.scalar_windows_per_sec,
            b.bitsliced_windows_per_sec,
            b.speedup(),
            b.bit_identical,
        )
        .expect("writing to a String cannot fail");
    }
    btable.print();

    // Classification-kernel microbenchmark: the top-2 Hamming search
    // of window scoring in isolation — per-window scalar kernel vs
    // the runtime-dispatched per-window SIMD kernel vs one blocked
    // batch call, over the detector's 2-class workload.
    let classify_windows = if cfg.smoke {
        2_000
    } else {
        cfg.pick(20_000, 50_000)
    };
    let mut classify_backend = "";
    println!("\n== classification kernels (2 classes, {classify_windows} windows/path) ==\n");
    let mut ctable = Table::new(&[
        "D",
        "scalar win/s",
        "simd win/s",
        "batch win/s",
        "simd speedup",
        "batch speedup",
        "identical",
    ]);
    let mut classify_entries = String::new();
    let mut classify_ok = true;
    for &dim in dims {
        let c = bench_classify(dim, 2, classify_windows, cfg.seed);
        classify_backend = c.backend;
        classify_ok &= c.bit_identical && c.batch_speedup() >= 1.0;
        ctable.row(&[
            &dim,
            &format!("{:.1}", c.scalar_windows_per_sec),
            &format!("{:.1}", c.simd_windows_per_sec),
            &format!("{:.1}", c.batch_windows_per_sec),
            &format!("{:.2}x", c.simd_speedup()),
            &format!("{:.2}x", c.batch_speedup()),
            &c.bit_identical,
        ]);
        if !classify_entries.is_empty() {
            classify_entries.push(',');
        }
        write!(
            classify_entries,
            "\n    {{\"dim\": {dim}, \"classes\": {}, \
             \"scalar_windows_per_sec\": {:.2}, \
             \"simd_windows_per_sec\": {:.2}, \
             \"batch_windows_per_sec\": {:.2}, \
             \"simd_speedup\": {:.3}, \"batch_speedup\": {:.3}, \
             \"bit_identical\": {}}}",
            c.classes,
            c.scalar_windows_per_sec,
            c.simd_windows_per_sec,
            c.batch_windows_per_sec,
            c.simd_speedup(),
            c.batch_speedup(),
            c.bit_identical,
        )
        .expect("writing to a String cannot fail");
    }
    ctable.print();
    println!("\ndispatched SIMD backend: {classify_backend}");

    // Serving-layer benchmark: `/classify` through a live in-process
    // server, keep-alive connections vs close-per-request, measured
    // by the same load generator CI's soak gate runs.
    let serve_conns = 32;
    let serve_secs = if cfg.smoke { 1.0 } else { cfg.pick(2.0, 4.0) };
    println!(
        "\n== serving layer ({serve_conns} connections, {serve_secs}s/mode, POST /classify) ==\n"
    );
    let sb = bench_serve(
        serve_conns,
        std::time::Duration::from_secs_f64(serve_secs),
        cfg.seed,
    );
    let fmt_us = |v: Option<u64>| v.map_or("n/a".to_owned(), |u| format!("{u}us"));
    let mut stable = Table::new(&["mode", "ok", "rps", "p50", "p99", "speedup", "clean"]);
    stable.row(&[
        &"keep-alive",
        &sb.keepalive_ok,
        &format!("{:.1}", sb.keepalive_rps),
        &fmt_us(sb.keepalive_p50_micros),
        &fmt_us(sb.keepalive_p99_micros),
        &format!("{:.2}x", sb.speedup()),
        &sb.clean,
    ]);
    stable.row(&[
        &"close",
        &sb.close_ok,
        &format!("{:.1}", sb.close_rps),
        &fmt_us(sb.close_p50_micros),
        &fmt_us(sb.close_p99_micros),
        &"1.00x",
        &sb.clean,
    ]);
    stable.print();
    // The full-run acceptance bar is 1.5×; smoke keeps a looser 1.0×
    // floor because 1s samples on a loaded CI core are noisy.
    let serve_ok = sb.clean && sb.speedup() >= if cfg.smoke { 1.0 } else { 1.5 };
    let json_us = |v: Option<u64>| v.map_or("null".to_owned(), |u| u.to_string());
    let serve_entry = format!(
        "{{\"connections\": {serve_conns}, \"endpoint\": \"/classify\", \
         \"keepalive_rps\": {:.2}, \"close_rps\": {:.2}, \
         \"keepalive_speedup\": {:.3}, \
         \"keepalive_p50_micros\": {}, \"keepalive_p99_micros\": {}, \
         \"close_p50_micros\": {}, \"close_p99_micros\": {}, \
         \"clean\": {}}}",
        sb.keepalive_rps,
        sb.close_rps,
        sb.speedup(),
        json_us(sb.keepalive_p50_micros),
        json_us(sb.keepalive_p99_micros),
        json_us(sb.close_p50_micros),
        json_us(sb.close_p99_micros),
        sb.clean,
    );

    if cfg.smoke {
        let mut ok = true;
        if smoke_ok {
            println!(
                "\nsmoke: cached extraction >= per-window throughput, scans bit-identical — OK"
            );
        } else {
            eprintln!("\nsmoke FAILED: cached extraction slower than per-window or scans diverged");
            ok = false;
        }
        if bundling_ok {
            println!("smoke: bit-sliced bundling >= scalar, bit-identical — OK");
        } else {
            eprintln!("smoke FAILED: bit-sliced bundling slower than scalar or not bit-identical");
            ok = false;
        }
        if classify_ok {
            println!("smoke: batched classification >= per-window scalar, bit-identical — OK");
        } else {
            eprintln!(
                "smoke FAILED: batched classification slower than per-window scalar \
                 or not bit-identical"
            );
            ok = false;
        }
        if serve_ok {
            println!("smoke: keep-alive serving >= close-per-request, run clean — OK");
        } else {
            eprintln!(
                "smoke FAILED: keep-alive serving slower than close-per-request, \
                 or the run saw 5xx/framing errors"
            );
            ok = false;
        }
        return if ok {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }

    let threads_json: Vec<String> = threads.iter().map(ToString::to_string).collect();
    let json = format!(
        "{{\n  \"bench\": \"detector\",\n  \"scene\": {{\"width\": {}, \"height\": {}, \
         \"windows\": {windows}}},\n  \"thread_counts\": [{}],\n  \
         \"simd_backend\": \"{classify_backend}\",\n  \"results\": [{entries}\n  ],\n  \
         \"bundling\": [{bundling_entries}\n  ],\n  \
         \"classify\": [{classify_entries}\n  ],\n  \
         \"serve\": {serve_entry}\n}}\n",
        scene.width(),
        scene.height(),
        threads_json.join(", "),
    );
    std::fs::write("BENCH_detector.json", &json).expect("writing BENCH_detector.json");
    println!("\nwrote BENCH_detector.json");
    ExitCode::SUCCESS
}
