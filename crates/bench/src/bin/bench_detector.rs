//! Detection-engine throughput report: scans one scene serially and
//! on all cores at D = 1k / 4k / 8k, verifies the two scans return
//! bit-identical detections, and writes the measured windows/second
//! (plus speedup) to `BENCH_detector.json`.
//!
//! ```sh
//! cargo run --release -p hdface-bench --bin bench_detector [-- --full]
//! ```

use std::fmt::Write as _;
use std::time::Instant;

use hdface::datasets::face2_spec;
use hdface::detector::{DetectorConfig, FaceDetector};
use hdface::engine::Engine;
use hdface::imaging::{GrayImage, ImagePyramid, SlidingWindows};
use hdface::learn::TrainConfig;
use hdface::pipeline::{HdFeatureMode, HdPipeline};
use hdface_bench::{RunConfig, Table};

const WINDOW: usize = 32;
const STRIDE_FRACTION: f64 = 0.25;

fn test_scene(n: usize) -> GrayImage {
    GrayImage::from_fn(n, n, |x, y| {
        0.5 + 0.4 * ((x as f32 * 0.43).sin() * (y as f32 * 0.29).cos())
    })
}

/// Number of windows one detect() call scores over `scene`.
fn count_windows(scene: &GrayImage, config: &DetectorConfig) -> usize {
    let stride = ((config.window as f64 * config.stride_fraction).round() as usize).max(1);
    let pyramid =
        ImagePyramid::new(scene, config.pyramid_step, config.window).expect("scene fits a window");
    pyramid
        .iter()
        .map(|l| SlidingWindows::new(&l.image, config.window, config.window, stride).count())
        .sum()
}

/// Best-of-`reps` throughput of one engine, in windows/second. One
/// untimed warmup scan first: the initial run pays cache/page-fault
/// noise that would otherwise skew whichever engine is measured
/// first (the source of a phantom sub-1.0 "speedup" at one thread,
/// where both engines run the identical inline path).
fn measure(det: &FaceDetector, scene: &GrayImage, engine: &Engine, windows: usize, reps: usize) -> f64 {
    det.detect_with(scene, engine).expect("warmup detection succeeds");
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        det.detect_with(scene, engine).expect("detection succeeds");
        best = best.min(t.elapsed().as_secs_f64());
    }
    windows as f64 / best
}

fn main() {
    let cfg = RunConfig::from_args();
    let scene = test_scene(cfg.pick(80, 128));
    let reps = cfg.pick(2, 3);
    let config = DetectorConfig {
        window: WINDOW,
        stride_fraction: STRIDE_FRACTION,
        ..DetectorConfig::default()
    };
    let windows = count_windows(&scene, &config);
    let serial = Engine::serial();
    let parallel = Engine::from_env();

    println!(
        "== detection engine throughput ({}x{} scene, {} windows, {} threads) ==\n",
        scene.width(),
        scene.height(),
        windows,
        parallel.threads()
    );
    let mut table = Table::new(&["D", "serial win/s", "parallel win/s", "speedup", "identical"]);
    let mut entries = String::new();

    for dim in [1024usize, 4096, 8192] {
        let data = face2_spec().at_size(WINDOW).scaled(12).generate(cfg.seed);
        let mut pipeline = HdPipeline::new(HdFeatureMode::hyper_hog(dim), cfg.seed);
        pipeline
            .train(&data, &TrainConfig::single_pass())
            .expect("training");
        let det = FaceDetector::new(pipeline, config);

        let identical = det.detect_with(&scene, &serial).expect("serial scan")
            == det.detect_with(&scene, &parallel).expect("parallel scan");
        let s = measure(&det, &scene, &serial, windows, reps);
        let p = measure(&det, &scene, &parallel, windows, reps);
        let speedup = p / s;
        table.row(&[
            &dim,
            &format!("{s:.1}"),
            &format!("{p:.1}"),
            &format!("{speedup:.2}x"),
            &identical,
        ]);

        if !entries.is_empty() {
            entries.push(',');
        }
        write!(
            entries,
            "\n    {{\"dim\": {dim}, \"serial_windows_per_sec\": {s:.2}, \
             \"parallel_windows_per_sec\": {p:.2}, \"speedup\": {speedup:.3}, \
             \"bit_identical\": {identical}}}"
        )
        .expect("writing to a String cannot fail");
    }
    table.print();

    let json = format!(
        "{{\n  \"bench\": \"detector\",\n  \"scene\": {{\"width\": {}, \"height\": {}, \
         \"windows\": {windows}}},\n  \"threads\": {},\n  \"results\": [{entries}\n  ]\n}}\n",
        scene.width(),
        scene.height(),
        parallel.threads()
    );
    std::fs::write("BENCH_detector.json", &json).expect("writing BENCH_detector.json");
    println!("\nwrote BENCH_detector.json");
}
