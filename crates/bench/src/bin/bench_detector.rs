//! Detection-engine throughput report: scans one scene at D = 1k /
//! 4k / 8k, sweeping thread counts (1 / 2 / 4 / all cores) and both
//! extraction modes (level-cell cached vs legacy per-window), checks
//! that cached-mode detections are bit-identical at every thread
//! count, reports cache hit/fallback counts, and writes everything to
//! `BENCH_detector.json`.
//!
//! ```sh
//! cargo run --release -p hdface-bench --bin bench_detector [-- --full | --smoke]
//! ```
//!
//! `--smoke` is the CI gate: one small dim, a tiny scene, and a hard
//! assertion that cached extraction is at least as fast as per-window
//! (exit 1 otherwise, no JSON written).

use std::fmt::Write as _;
use std::process::ExitCode;
use std::time::Instant;

use hdface::datasets::face2_spec;
use hdface::detector::{Detection, DetectorConfig, ExtractionMode, FaceDetector, ScanStats};
use hdface::engine::Engine;
use hdface::imaging::{GrayImage, ImagePyramid, SlidingWindows};
use hdface::learn::TrainConfig;
use hdface::pipeline::{HdFeatureMode, HdPipeline};
use hdface_bench::{bench_bundling, RunConfig, Table};

const WINDOW: usize = 32;
const STRIDE_FRACTION: f64 = 0.25;

/// Slots folded into each bundling-bench window: 16 HOG cells × 8
/// orientation bins, the shape of one 32×32 detection window.
const BUNDLE_SLOTS: usize = 128;

fn test_scene(n: usize) -> GrayImage {
    GrayImage::from_fn(n, n, |x, y| {
        0.5 + 0.4 * ((x as f32 * 0.43).sin() * (y as f32 * 0.29).cos())
    })
}

/// Number of windows one detect() call scores over `scene`.
fn count_windows(scene: &GrayImage, config: &DetectorConfig) -> usize {
    let stride = ((config.window as f64 * config.stride_fraction).round() as usize).max(1);
    let pyramid =
        ImagePyramid::new(scene, config.pyramid_step, config.window).expect("scene fits a window");
    pyramid
        .iter()
        .map(|l| SlidingWindows::new(&l.image, config.window, config.window, stride).count())
        .sum()
}

/// The thread counts to sweep: 1 / 2 / 4 / all cores, deduplicated
/// and capped at the machine's parallelism.
fn thread_sweep() -> Vec<usize> {
    let max = Engine::from_env().threads();
    let mut counts: Vec<usize> = [1usize, 2, 4, max]
        .into_iter()
        .filter(|&n| n <= max)
        .collect();
    counts.sort_unstable();
    counts.dedup();
    counts
}

/// Best-of-`reps` throughput in windows/second, plus the detections
/// and cache stats of one scan (identical every run — scans are
/// deterministic). One untimed warmup scan first: the initial run
/// pays page-fault and slot-key derivation noise that would otherwise
/// skew whichever configuration is measured first.
fn measure(
    det: &FaceDetector,
    scene: &GrayImage,
    engine: &Engine,
    windows: usize,
    reps: usize,
) -> (f64, Vec<Detection>, ScanStats) {
    det.detect_with(scene, engine)
        .expect("warmup detection succeeds");
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..reps {
        let t = Instant::now();
        let scan = det
            .detect_with_stats(scene, engine)
            .expect("detection succeeds");
        best = best.min(t.elapsed().as_secs_f64());
        out = Some(scan);
    }
    let (detections, stats) = out.expect("at least one rep");
    (windows as f64 / best, detections, stats)
}

fn json_list(values: &[f64]) -> String {
    let cells: Vec<String> = values.iter().map(|v| format!("{v:.2}")).collect();
    format!("[{}]", cells.join(", "))
}

fn main() -> ExitCode {
    let cfg = RunConfig::from_args();
    let scene = test_scene(if cfg.smoke { 48 } else { cfg.pick(80, 128) });
    let reps = if cfg.smoke { 1 } else { cfg.pick(2, 3) };
    let dims: &[usize] = if cfg.smoke {
        &[1024]
    } else {
        &[1024, 4096, 8192]
    };
    let config = DetectorConfig {
        window: WINDOW,
        stride_fraction: STRIDE_FRACTION,
        ..DetectorConfig::default()
    };
    let windows = count_windows(&scene, &config);
    let threads = thread_sweep();

    println!(
        "== detection engine throughput ({}x{} scene, {} windows, threads {threads:?}) ==\n",
        scene.width(),
        scene.height(),
        windows,
    );
    let mut table = Table::new(&[
        "D",
        "threads",
        "cached win/s",
        "per-window win/s",
        "speedup",
        "hits/fallbacks",
        "identical",
    ]);
    let mut entries = String::new();
    let mut smoke_ok = true;

    for &dim in dims {
        let data = face2_spec().at_size(WINDOW).scaled(12).generate(cfg.seed);
        let mut pipeline = HdPipeline::new(HdFeatureMode::hyper_hog(dim), cfg.seed);
        pipeline
            .train(&data, &TrainConfig::single_pass())
            .expect("training");
        let mut det = FaceDetector::new(pipeline, config);

        // Sweep cached mode first across all thread counts, then flip
        // the same detector to per-window; the model (and therefore
        // the detections' meaning) is shared.
        let mut cached_wps = Vec::new();
        let mut cached_scans = Vec::new();
        let mut stats = ScanStats::default();
        det.set_extraction(ExtractionMode::Cached);
        for &n in &threads {
            let (wps, dets, s) = measure(&det, &scene, &Engine::new(n), windows, reps);
            cached_wps.push(wps);
            cached_scans.push(dets);
            stats = s;
        }
        let identical = cached_scans.windows(2).all(|pair| pair[0] == pair[1]);

        let mut pw_wps = Vec::new();
        det.set_extraction(ExtractionMode::PerWindow);
        for &n in &threads {
            let (wps, _, _) = measure(&det, &scene, &Engine::new(n), windows, reps);
            pw_wps.push(wps);
        }

        // Headline ratio: best cached throughput over best per-window
        // throughput across the sweep.
        let best = |v: &[f64]| v.iter().fold(0.0f64, |a, &b| a.max(b));
        let speedup = best(&cached_wps) / best(&pw_wps);
        smoke_ok &= speedup >= 1.0;

        for (i, &n) in threads.iter().enumerate() {
            table.row(&[
                &dim,
                &n,
                &format!("{:.1}", cached_wps[i]),
                &format!("{:.1}", pw_wps[i]),
                &format!("{:.2}x", cached_wps[i] / pw_wps[i]),
                &format!("{}/{}", stats.cached_windows, stats.fallback_windows),
                &identical,
            ]);
        }

        if !entries.is_empty() {
            entries.push(',');
        }
        write!(
            entries,
            "\n    {{\"dim\": {dim}, \
             \"cached_windows_per_sec\": {}, \
             \"per_window_windows_per_sec\": {}, \
             \"cached_speedup\": {speedup:.3}, \
             \"cache_hits\": {}, \"cache_fallbacks\": {}, \
             \"bit_identical\": {identical}}}",
            json_list(&cached_wps),
            json_list(&pw_wps),
            stats.cached_windows,
            stats.fallback_windows,
        )
        .expect("writing to a String cannot fail");
    }
    table.print();

    // Bundling-kernel microbenchmark: the bind+accumulate+threshold
    // inner loop in isolation, scalar `Accumulator` reference vs the
    // fused bit-sliced kernel the detector now runs.
    let bundle_windows = if cfg.smoke { 30 } else { cfg.pick(100, 300) };
    println!(
        "\n== bundling kernels ({BUNDLE_SLOTS} slots/window, {bundle_windows} windows/path) ==\n"
    );
    let mut btable = Table::new(&[
        "D",
        "scalar win/s",
        "bit-sliced win/s",
        "speedup",
        "identical",
    ]);
    let mut bundling_entries = String::new();
    let mut bundling_ok = true;
    for &dim in dims {
        let b = bench_bundling(dim, BUNDLE_SLOTS, bundle_windows, cfg.seed);
        bundling_ok &= b.bit_identical && b.speedup() >= 1.0;
        btable.row(&[
            &dim,
            &format!("{:.1}", b.scalar_windows_per_sec),
            &format!("{:.1}", b.bitsliced_windows_per_sec),
            &format!("{:.2}x", b.speedup()),
            &b.bit_identical,
        ]);
        if !bundling_entries.is_empty() {
            bundling_entries.push(',');
        }
        write!(
            bundling_entries,
            "\n    {{\"dim\": {dim}, \"slots\": {BUNDLE_SLOTS}, \
             \"scalar_windows_per_sec\": {:.2}, \
             \"bitsliced_windows_per_sec\": {:.2}, \
             \"speedup\": {:.3}, \"bit_identical\": {}}}",
            b.scalar_windows_per_sec,
            b.bitsliced_windows_per_sec,
            b.speedup(),
            b.bit_identical,
        )
        .expect("writing to a String cannot fail");
    }
    btable.print();

    if cfg.smoke {
        let mut ok = true;
        if smoke_ok {
            println!("\nsmoke: cached extraction >= per-window throughput — OK");
        } else {
            eprintln!("\nsmoke FAILED: cached extraction slower than per-window");
            ok = false;
        }
        if bundling_ok {
            println!("smoke: bit-sliced bundling >= scalar, bit-identical — OK");
        } else {
            eprintln!("smoke FAILED: bit-sliced bundling slower than scalar or not bit-identical");
            ok = false;
        }
        return if ok {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }

    let threads_json: Vec<String> = threads.iter().map(ToString::to_string).collect();
    let json = format!(
        "{{\n  \"bench\": \"detector\",\n  \"scene\": {{\"width\": {}, \"height\": {}, \
         \"windows\": {windows}}},\n  \"thread_counts\": [{}],\n  \"results\": [{entries}\n  ],\n  \
         \"bundling\": [{bundling_entries}\n  ]\n}}\n",
        scene.width(),
        scene.height(),
        threads_json.join(", "),
    );
    std::fs::write("BENCH_detector.json", &json).expect("writing BENCH_detector.json");
    println!("\nwrote BENCH_detector.json");
    ExitCode::SUCCESS
}
