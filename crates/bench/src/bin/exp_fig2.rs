//! **Fig. 2 reproduction** — relative error of the stochastic
//! primitives (construction, average, multiplication) as a function
//! of hypervector dimensionality, plus the square-root and division
//! binary searches as supplementary series.
//!
//! Paper claim to reproduce: "the relative error rate decreases with
//! the hypervector dimensionality".
//!
//! ```sh
//! cargo run --release -p hdface-bench --bin exp_fig2 [-- --full]
//! ```

use hdface_bench::{RunConfig, Table};
use hdface_stochastic::{expected_sigma, measure_errors, OpKind, StochasticContext};

fn main() {
    let cfg = RunConfig::from_args();
    let dims: &[usize] = cfg.pick(
        &[512, 1024, 2048, 4096, 8192][..],
        &[512, 1024, 2048, 4096, 8192, 16384, 32768][..],
    );
    let grid = cfg.pick(7, 11);
    let trials = cfg.pick(3, 8);

    println!("== Fig. 2: stochastic arithmetic error vs dimensionality ==\n");
    let mut table = Table::new(&[
        "D",
        "construction",
        "average",
        "multiplication",
        "sqrt",
        "divide",
        "sigma=1/sqrt(D)",
    ]);

    for &dim in dims {
        let mut cells: Vec<String> = vec![dim.to_string()];
        for op in OpKind::ALL {
            let stats = measure_errors(op, dim, grid, trials, cfg.seed).expect("dim > 0");
            cells.push(format!("{:.5}", stats.mean_abs_error));
        }
        // Supplementary: sqrt and divide over a value grid.
        let mut ctx = StochasticContext::new(dim, cfg.seed + 1);
        let mut e_sqrt = 0.0;
        let mut e_div = 0.0;
        let mut n_sqrt = 0usize;
        let mut n_div = 0usize;
        for i in 0..grid {
            let x = i as f64 / (grid - 1) as f64;
            let vx = ctx.encode(x).unwrap();
            let r = ctx.sqrt(&vx).unwrap();
            e_sqrt += (ctx.decode(&r).unwrap() - x.sqrt()).abs();
            n_sqrt += 1;
            let denom = 0.4 + 0.6 * x; // keep |num| ≤ |den|
            let num = denom * (2.0 * (i as f64 / (grid - 1) as f64) - 1.0) * 0.9;
            let vn = ctx.encode(num).unwrap();
            let vd = ctx.encode(denom).unwrap();
            if let Ok(q) = ctx.div(&vn, &vd) {
                e_div += (ctx.decode(&q).unwrap() - num / denom).abs();
                n_div += 1;
            }
        }
        cells.push(format!("{:.5}", e_sqrt / n_sqrt as f64));
        cells.push(format!("{:.5}", e_div / n_div.max(1) as f64));
        cells.push(format!("{:.5}", expected_sigma(dim, 0.0)));
        let refs: Vec<&dyn std::fmt::Display> =
            cells.iter().map(|c| c as &dyn std::fmt::Display).collect();
        table.row(&refs);
    }
    table.print();
    println!(
        "\nshape check (paper): every column shrinks as D grows, tracking 1/sqrt(D).\n\
         paper reference: errors become negligible by D = 4k-8k (Fig. 2a-c)."
    );
}
