//! **Fig. 6 reproduction** — visualizing the impact of dimensionality:
//! (a) sliding-window face detection maps over a scene at D = 1k vs
//! D = 4k (detected windows painted blue, false alarms red);
//! (b) emotion prediction on one face per class at several
//! dimensionalities.
//!
//! Paper claims to reproduce: low-dimensional models mispredict a few
//! windows / emotions; the mispredictions disappear (or shrink) as D
//! grows.
//!
//! Outputs: `out/fig6_detection_d*.ppm` + console tables.
//!
//! ```sh
//! cargo run --release -p hdface-bench --bin exp_fig6 [-- --full]
//! ```

use std::fs::File;
use std::io::BufWriter;

use hdface::datasets::{emotion_spec, face2_spec, render_face, Emotion, FaceParams};
use hdface::hdc::{HdcRng, SeedableRng};
use hdface::imaging::{gaussian_noise, write_ppm_overlay, Canvas, GrayImage, Rgb, SlidingWindows};
use hdface::learn::TrainConfig;
use hdface::pipeline::{HdFeatureMode, HdPipeline};
use hdface_bench::{RunConfig, Table};

const WINDOW: usize = 32;

/// A clutter scene with three embedded faces at known positions.
fn build_scene(size: usize, rng: &mut HdcRng) -> (GrayImage, Vec<(usize, usize)>) {
    let mut canvas = Canvas::new(GrayImage::filled(size, size, 0.4));
    canvas.linear_gradient(0.25, 0.55, 1.1);
    for i in 0..6 {
        let t = i as f32 * size as f32 / 6.0;
        canvas.line(t, 0.0, size as f32 - t, size as f32, 2.0, 0.2);
        canvas.fill_rect(
            (i * 31 % size) as isize,
            ((i * 53 + 17) % size) as isize,
            size / 8,
            size / 10,
            0.6,
        );
    }
    let mut scene = canvas.into_image();
    let margin = size - WINDOW;
    let positions: Vec<(usize, usize)> = vec![
        (margin / 8, margin / 6),
        (margin * 3 / 4, margin / 3),
        (margin / 3, margin * 4 / 5),
    ];
    for (i, &(x, y)) in positions.iter().enumerate() {
        let emotion = Emotion::ALL[i * 2 % 7];
        let face = render_face(WINDOW, &FaceParams::centered(WINDOW, emotion), rng);
        for dy in 0..WINDOW {
            for dx in 0..WINDOW {
                scene.set(x + dx, y + dy, face.get(dx, dy));
            }
        }
    }
    (gaussian_noise(&scene, 0.02, rng), positions)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = RunConfig::from_args();
    std::fs::create_dir_all("out")?;
    let mut rng = HdcRng::seed_from_u64(cfg.seed);

    // ------------------- (a) face detection maps -------------------
    println!("== Fig. 6a: sliding-window detection maps ==\n");
    let scene_size = cfg.pick(96, 128);
    let (scene, truth) = build_scene(scene_size, &mut rng);
    let train = face2_spec()
        .scaled(cfg.pick(120, 240))
        .at_size(WINDOW)
        .generate(cfg.seed + 1);

    let mut t6a = Table::new(&["D", "windows", "hits", "false alarms", "output"]);
    for dim in [1024usize, 4096] {
        let mut pipeline = HdPipeline::new(HdFeatureMode::hyper_hog(dim), cfg.seed);
        pipeline.train(&train, &TrainConfig::default())?;
        let mut marked = Vec::new();
        let mut hits = 0usize;
        let mut false_alarms = 0usize;
        let windows: Vec<_> = SlidingWindows::new(&scene, WINDOW, WINDOW, WINDOW / 2).collect();
        for w in &windows {
            let crop = scene.crop(w.x, w.y, w.width, w.height)?;
            if pipeline.predict(&crop)? == 1 {
                let is_true = truth.iter().any(|&(fx, fy)| {
                    (w.x as isize - fx as isize).unsigned_abs() < WINDOW / 2
                        && (w.y as isize - fy as isize).unsigned_abs() < WINDOW / 2
                });
                if is_true {
                    hits += 1;
                    marked.push((*w, Rgb::DETECTION_BLUE));
                } else {
                    false_alarms += 1;
                    marked.push((*w, Rgb::ERROR_RED));
                }
            }
        }
        let path = format!("out/fig6_detection_d{dim}.ppm");
        write_ppm_overlay(&scene, &marked, BufWriter::new(File::create(&path)?))?;
        t6a.row(&[&dim, &windows.len(), &hits, &false_alarms, &path]);
    }
    t6a.print();
    println!(
        "shape check (paper Fig. 6a): D = 1k flags spurious windows; the\n\
         mispredictions shrink or disappear at D = 4k.\n"
    );

    // ------------------- (b) emotion predictions --------------------
    println!("== Fig. 6b: emotion prediction vs dimensionality ==\n");
    let emotion_train = emotion_spec()
        .scaled(cfg.pick(280, 490))
        .generate(cfg.seed + 2);
    let mut t6b = Table::new(&["emotion", "D=1k", "D=4k", "D=8k"]);
    let mut pipes: Vec<(usize, HdPipeline)> = [1024usize, 4096, 8192]
        .iter()
        .map(|&d| {
            let mut p = HdPipeline::new(HdFeatureMode::hyper_hog(d), cfg.seed);
            p.train(&emotion_train, &TrainConfig::default())
                .expect("train");
            (d, p)
        })
        .collect();
    let mut correct = [0usize; 3];
    for e in Emotion::ALL {
        let img = render_face(
            48,
            &FaceParams::randomized_centered(48, e, &mut rng),
            &mut rng,
        );
        let mut row: Vec<String> = vec![e.name().to_owned()];
        for (i, (_, p)) in pipes.iter_mut().enumerate() {
            let pred = Emotion::ALL[p.predict(&img)?];
            if pred == e {
                correct[i] += 1;
            }
            row.push(if pred == e {
                format!("{} *", pred.name())
            } else {
                pred.name().to_owned()
            });
        }
        let refs: Vec<&dyn std::fmt::Display> =
            row.iter().map(|c| c as &dyn std::fmt::Display).collect();
        t6b.row(&refs);
    }
    t6b.row(&[
        &"correct",
        &format!("{}/7", correct[0]),
        &format!("{}/7", correct[1]),
        &format!("{}/7", correct[2]),
    ]);
    t6b.print();
    println!(
        "shape check (paper Fig. 6b): predictions improve with D (the paper\n\
         shows an error at D = 1k resolved by D ≥ 4k). Fine-grained expression\n\
         recognition through the stochastic extractor remains noise-limited —\n\
         see EXPERIMENTS.md for the quantified SNR analysis."
    );
    Ok(())
}
