//! Property-based tests for the image substrate.

use hdface_imaging::{box_blur, read_pgm, write_pgm, GrayImage, SlidingWindows};
use proptest::prelude::*;
use std::io::Cursor;

fn arb_image() -> impl Strategy<Value = GrayImage> {
    (1usize..=24, 1usize..=24).prop_flat_map(|(w, h)| {
        prop::collection::vec(0.0f32..=1.0, w * h)
            .prop_map(move |px| GrayImage::from_pixels(w, h, px).expect("sized"))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn pixels_stay_clamped(img in arb_image()) {
        for &p in img.pixels() {
            prop_assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn normalization_is_idempotent(img in arb_image()) {
        let once = img.normalized();
        let twice = once.normalized();
        for (a, b) in once.pixels().iter().zip(twice.pixels()) {
            prop_assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn resize_produces_requested_dims(img in arb_image(), w in 1usize..=32, h in 1usize..=32) {
        let r = img.resized(w, h).unwrap();
        prop_assert_eq!(r.width(), w);
        prop_assert_eq!(r.height(), h);
    }

    #[test]
    fn resize_preserves_value_range(img in arb_image()) {
        let r = img.resized(5, 7).unwrap();
        let (lo0, hi0) = img.min_max().unwrap();
        for &p in r.pixels() {
            prop_assert!(p >= lo0 - 1e-5 && p <= hi0 + 1e-5);
        }
    }

    #[test]
    fn crop_matches_source(img in arb_image()) {
        let w = img.width().div_ceil(2);
        let h = img.height().div_ceil(2);
        let c = img.crop(0, 0, w, h).unwrap();
        for y in 0..h {
            for x in 0..w {
                prop_assert_eq!(c.get(x, y), img.get(x, y));
            }
        }
    }

    #[test]
    fn pgm_roundtrip_within_quantization(img in arb_image()) {
        let mut buf = Vec::new();
        write_pgm(&img, &mut buf).unwrap();
        let back = read_pgm(Cursor::new(buf)).unwrap();
        prop_assert_eq!(back.width(), img.width());
        for (a, b) in img.pixels().iter().zip(back.pixels()) {
            prop_assert!((a - b).abs() <= 0.5 / 255.0 + 1e-6);
        }
    }

    #[test]
    fn blur_stays_in_range_and_commutes_with_constant_shift(img in arb_image(), r in 0usize..=2) {
        let b = box_blur(&img, r);
        prop_assert_eq!(b.width(), img.width());
        for &p in b.pixels() {
            prop_assert!((-1e-6..=1.0 + 1e-6).contains(&p));
        }
    }

    #[test]
    fn sliding_windows_tile_within_bounds(img in arb_image(), stride in 1usize..=8) {
        let win = img.width().min(img.height()).min(8);
        prop_assume!(win >= 1);
        let mut count = 0;
        for w in SlidingWindows::new(&img, win, win, stride) {
            prop_assert!(w.x + w.width <= img.width());
            prop_assert!(w.y + w.height <= img.height());
            count += 1;
        }
        // At least the origin placement exists whenever the window fits.
        prop_assert!(count >= 1);
    }
}
