//! Integral images (summed-area tables) — the substrate of HAAR-like
//! feature extraction (§2 of the paper lists HAAR among the standard
//! face-detection feature families).

use crate::image::GrayImage;

/// A summed-area table: `sum(x, y)` is the sum of all pixels in the
/// rectangle `[0, x) × [0, y)`, so any axis-aligned box sum costs
/// four lookups.
///
/// ```
/// use hdface_imaging::{GrayImage, IntegralImage};
///
/// let img = GrayImage::filled(4, 4, 0.5);
/// let ii = IntegralImage::new(&img);
/// assert!((ii.box_sum(0, 0, 4, 4) - 8.0).abs() < 1e-6);
/// assert!((ii.box_sum(1, 1, 2, 2) - 2.0).abs() < 1e-6);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct IntegralImage {
    width: usize,
    height: usize,
    /// (width+1) × (height+1) table, row-major, `f64` to avoid
    /// cancellation on large images.
    table: Vec<f64>,
}

impl IntegralImage {
    /// Builds the table in one pass.
    #[must_use]
    pub fn new(image: &GrayImage) -> Self {
        let w = image.width();
        let h = image.height();
        let stride = w + 1;
        let mut table = vec![0.0f64; stride * (h + 1)];
        for y in 0..h {
            let mut row_sum = 0.0f64;
            for x in 0..w {
                row_sum += f64::from(image.get(x, y));
                table[(y + 1) * stride + (x + 1)] = table[y * stride + (x + 1)] + row_sum;
            }
        }
        IntegralImage {
            width: w,
            height: h,
            table,
        }
    }

    /// Source image width.
    #[must_use]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Source image height.
    #[must_use]
    pub fn height(&self) -> usize {
        self.height
    }

    /// Prefix sum over `[0, x) × [0, y)` (`x ≤ width`, `y ≤ height`).
    ///
    /// # Panics
    ///
    /// Panics when the corner lies outside the table.
    #[must_use]
    pub fn prefix(&self, x: usize, y: usize) -> f64 {
        assert!(
            x <= self.width && y <= self.height,
            "prefix corner ({x},{y}) outside {}x{}",
            self.width,
            self.height
        );
        self.table[y * (self.width + 1) + x]
    }

    /// Sum of the `w × h` box with top-left corner `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics when the box exceeds the image bounds.
    #[must_use]
    pub fn box_sum(&self, x: usize, y: usize, w: usize, h: usize) -> f64 {
        assert!(
            x + w <= self.width && y + h <= self.height,
            "box ({x},{y},{w},{h}) outside {}x{}",
            self.width,
            self.height
        );
        self.prefix(x + w, y + h) + self.prefix(x, y)
            - self.prefix(x + w, y)
            - self.prefix(x, y + h)
    }

    /// Mean intensity of a box.
    ///
    /// # Panics
    ///
    /// Panics when the box exceeds the image bounds or is empty.
    #[must_use]
    pub fn box_mean(&self, x: usize, y: usize, w: usize, h: usize) -> f64 {
        assert!(w > 0 && h > 0, "box must be non-empty");
        self.box_sum(x, y, w, h) / (w * h) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_naive_summation() {
        let img = GrayImage::from_fn(7, 5, |x, y| ((x * 3 + y * 5) % 11) as f32 / 10.0);
        let ii = IntegralImage::new(&img);
        for (x, y, w, h) in [(0, 0, 7, 5), (1, 1, 3, 2), (4, 0, 3, 5), (6, 4, 1, 1)] {
            let naive: f64 = (y..y + h)
                .flat_map(|yy| (x..x + w).map(move |xx| (xx, yy)))
                .map(|(xx, yy)| f64::from(img.get(xx, yy)))
                .sum();
            assert!(
                (ii.box_sum(x, y, w, h) - naive).abs() < 1e-6,
                "box ({x},{y},{w},{h})"
            );
        }
    }

    #[test]
    fn mean_of_constant_image() {
        let img = GrayImage::filled(6, 6, 0.25);
        let ii = IntegralImage::new(&img);
        assert!((ii.box_mean(2, 3, 3, 2) - 0.25).abs() < 1e-9);
    }

    #[test]
    fn empty_image_has_zero_prefix() {
        let ii = IntegralImage::new(&GrayImage::new(0, 0));
        assert_eq!(ii.prefix(0, 0), 0.0);
        assert_eq!(ii.width(), 0);
        assert_eq!(ii.height(), 0);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn out_of_bounds_box_panics() {
        let ii = IntegralImage::new(&GrayImage::new(4, 4));
        let _ = ii.box_sum(2, 2, 3, 3);
    }
}
