//! PGM / PPM serialization for visual experiment artifacts.
//!
//! Binary PGM (P5) carries grayscale images; PPM (P6) is used by the
//! Fig. 6 reproduction to paint detection windows in color on top of
//! a grayscale base image.

use std::io::{BufRead, Write};

use crate::image::{GrayImage, ImageError};
use crate::window::Window;

/// An 8-bit RGB color for overlay rendering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Rgb(
    /// Red channel.
    pub u8,
    /// Green channel.
    pub u8,
    /// Blue channel.
    pub u8,
);

impl Rgb {
    /// The translucent-looking blue the paper uses to mark detected
    /// face windows in Fig. 6.
    pub const DETECTION_BLUE: Rgb = Rgb(60, 90, 230);
    /// Red marker for mispredicted windows.
    pub const ERROR_RED: Rgb = Rgb(230, 60, 60);
}

/// Writes a binary PGM (P5) image.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_pgm<W: Write>(image: &GrayImage, mut w: W) -> std::io::Result<()> {
    writeln!(w, "P5")?;
    writeln!(w, "{} {}", image.width(), image.height())?;
    writeln!(w, "255")?;
    w.write_all(&image.to_u8())
}

/// Reads a binary PGM (P5) image.
///
/// # Errors
///
/// Returns [`ImageError::Parse`] for malformed headers or truncated
/// pixel data; I/O errors are folded into the parse error.
pub fn read_pgm<R: BufRead>(mut r: R) -> Result<GrayImage, ImageError> {
    let mut header: Vec<String> = Vec::new();
    let mut line = String::new();
    // Collect 3 whitespace-separated header tokens groups: magic,
    // dimensions, maxval (comments skipped).
    while header.len() < 4 {
        line.clear();
        let n = r
            .read_line(&mut line)
            .map_err(|e| ImageError::Parse(e.to_string()))?;
        if n == 0 {
            return Err(ImageError::Parse("unexpected end of header".into()));
        }
        let trimmed = line.trim();
        if trimmed.starts_with('#') {
            continue;
        }
        header.extend(trimmed.split_whitespace().map(str::to_owned));
    }
    if header[0] != "P5" {
        return Err(ImageError::Parse(format!(
            "unsupported magic {}",
            header[0]
        )));
    }
    let width: usize = header[1]
        .parse()
        .map_err(|_| ImageError::Parse("bad width".into()))?;
    let height: usize = header[2]
        .parse()
        .map_err(|_| ImageError::Parse("bad height".into()))?;
    let maxval: u32 = header[3]
        .parse()
        .map_err(|_| ImageError::Parse("bad maxval".into()))?;
    if maxval != 255 {
        return Err(ImageError::Parse(format!("unsupported maxval {maxval}")));
    }
    let mut bytes = vec![0u8; width * height];
    r.read_exact(&mut bytes)
        .map_err(|e| ImageError::Parse(format!("truncated pixel data: {e}")))?;
    GrayImage::from_u8(width, height, &bytes)
}

/// Writes a binary PPM (P6) rendering of `image` with each window in
/// `marked` tinted by its paired color (alpha-blended at 45%) — the
/// Fig. 6 detection-map artifact.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_ppm_overlay<W: Write>(
    image: &GrayImage,
    marked: &[(Window, Rgb)],
    mut w: W,
) -> std::io::Result<()> {
    writeln!(w, "P6")?;
    writeln!(w, "{} {}", image.width(), image.height())?;
    writeln!(w, "255")?;
    const ALPHA: f32 = 0.45;
    let mut row = Vec::with_capacity(image.width() * 3);
    for y in 0..image.height() {
        row.clear();
        for x in 0..image.width() {
            let g = image.get(x, y);
            let base = (g * 255.0).round().clamp(0.0, 255.0);
            // Blend every overlay covering this pixel, in order.
            let (mut rr, mut gg, mut bb) = (base, base, base);
            for (win, color) in marked {
                if win.contains(x, y) {
                    rr = rr * (1.0 - ALPHA) + f32::from(color.0) * ALPHA;
                    gg = gg * (1.0 - ALPHA) + f32::from(color.1) * ALPHA;
                    bb = bb * (1.0 - ALPHA) + f32::from(color.2) * ALPHA;
                }
            }
            row.push(rr.round() as u8);
            row.push(gg.round() as u8);
            row.push(bb.round() as u8);
        }
        w.write_all(&row)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn pgm_roundtrip() {
        let img = GrayImage::from_fn(5, 3, |x, y| (x as f32 + y as f32) / 6.0);
        let mut buf = Vec::new();
        write_pgm(&img, &mut buf).unwrap();
        let back = read_pgm(Cursor::new(buf)).unwrap();
        assert_eq!(back.width(), 5);
        assert_eq!(back.height(), 3);
        for (a, b) in img.pixels().iter().zip(back.pixels()) {
            assert!((a - b).abs() < 1.0 / 255.0 + 1e-6);
        }
    }

    #[test]
    fn pgm_rejects_wrong_magic() {
        let data = b"P2\n2 2\n255\n0 0 0 0".to_vec();
        assert!(matches!(
            read_pgm(Cursor::new(data)),
            Err(ImageError::Parse(_))
        ));
    }

    #[test]
    fn pgm_rejects_truncated_pixels() {
        let data = b"P5\n4 4\n255\nab".to_vec();
        assert!(matches!(
            read_pgm(Cursor::new(data)),
            Err(ImageError::Parse(_))
        ));
    }

    #[test]
    fn pgm_skips_comments() {
        let mut data = b"P5\n# a comment\n2 1\n255\n".to_vec();
        data.extend_from_slice(&[0u8, 255u8]);
        let img = read_pgm(Cursor::new(data)).unwrap();
        assert_eq!(img.get(1, 0), 1.0);
    }

    #[test]
    fn overlay_tints_window_pixels() {
        let img = GrayImage::filled(4, 4, 0.0);
        let win = Window {
            x: 0,
            y: 0,
            width: 2,
            height: 2,
        };
        let mut buf = Vec::new();
        write_ppm_overlay(&img, &[(win, Rgb::DETECTION_BLUE)], &mut buf).unwrap();
        // Header "P6\n4 4\n255\n" = 11 bytes, then RGB triplets.
        let body = &buf[11..];
        assert_eq!(body.len(), 4 * 4 * 3);
        // Pixel (0,0) tinted blue: blue channel > red channel.
        assert!(body[2] > body[0]);
        // Pixel (3,3) untouched black.
        let last = &body[(3 * 4 + 3) * 3..];
        assert_eq!(last, &[0, 0, 0]);
    }

    #[test]
    fn overlay_blends_multiple_windows() {
        let img = GrayImage::filled(2, 1, 0.5);
        let w1 = Window {
            x: 0,
            y: 0,
            width: 1,
            height: 1,
        };
        let mut buf = Vec::new();
        write_ppm_overlay(
            &img,
            &[(w1, Rgb::ERROR_RED), (w1, Rgb::ERROR_RED)],
            &mut buf,
        )
        .unwrap();
        let body = &buf[11..];
        // Double-blended red is redder than single blend of the other pixel.
        assert!(body[0] > body[3]);
    }
}
