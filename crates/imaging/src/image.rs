//! The grayscale image type.

use std::error::Error;
use std::fmt;

/// Errors raised by image construction and geometry operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ImageError {
    /// The pixel buffer length does not equal `width * height`.
    BufferSizeMismatch {
        /// Expected number of pixels.
        expected: usize,
        /// Actual buffer length supplied.
        actual: usize,
    },
    /// A crop rectangle extends outside the image bounds.
    CropOutOfBounds,
    /// A zero width or height was supplied where a non-empty image is
    /// required.
    EmptyImage,
    /// PNM parsing failed.
    Parse(String),
}

impl fmt::Display for ImageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ImageError::BufferSizeMismatch { expected, actual } => {
                write!(f, "pixel buffer holds {actual} values, expected {expected}")
            }
            ImageError::CropOutOfBounds => write!(f, "crop rectangle exceeds image bounds"),
            ImageError::EmptyImage => write!(f, "image dimensions must be non-zero"),
            ImageError::Parse(msg) => write!(f, "invalid PNM data: {msg}"),
        }
    }
}

impl Error for ImageError {}

/// A grayscale image with `f32` pixels in `[0, 1]`, row-major.
///
/// `0.0` is black and `1.0` is white, matching the normalization the
/// paper applies before hyperdimensional encoding ("we first normalize
/// the image feature vector so that each value is between 0 and 1",
/// §4.3).
#[derive(Clone, PartialEq)]
pub struct GrayImage {
    width: usize,
    height: usize,
    pixels: Vec<f32>,
}

impl GrayImage {
    /// Creates an image filled with a constant intensity (clamped to
    /// `[0, 1]`).
    #[must_use]
    pub fn filled(width: usize, height: usize, value: f32) -> Self {
        GrayImage {
            width,
            height,
            pixels: vec![value.clamp(0.0, 1.0); width * height],
        }
    }

    /// Creates a black image.
    #[must_use]
    pub fn new(width: usize, height: usize) -> Self {
        Self::filled(width, height, 0.0)
    }

    /// Builds an image by evaluating `f(x, y)` for every pixel; values
    /// are clamped to `[0, 1]`.
    #[must_use]
    pub fn from_fn<F: FnMut(usize, usize) -> f32>(width: usize, height: usize, mut f: F) -> Self {
        let mut pixels = Vec::with_capacity(width * height);
        for y in 0..height {
            for x in 0..width {
                pixels.push(f(x, y).clamp(0.0, 1.0));
            }
        }
        GrayImage {
            width,
            height,
            pixels,
        }
    }

    /// Wraps an existing row-major pixel buffer.
    ///
    /// # Errors
    ///
    /// Returns [`ImageError::BufferSizeMismatch`] when the buffer
    /// length is not `width * height`.
    pub fn from_pixels(width: usize, height: usize, pixels: Vec<f32>) -> Result<Self, ImageError> {
        if pixels.len() != width * height {
            return Err(ImageError::BufferSizeMismatch {
                expected: width * height,
                actual: pixels.len(),
            });
        }
        Ok(GrayImage {
            width,
            height,
            pixels: pixels.into_iter().map(|p| p.clamp(0.0, 1.0)).collect(),
        })
    }

    /// Converts an 8-bit buffer (0–255) to the float representation.
    ///
    /// # Errors
    ///
    /// Returns [`ImageError::BufferSizeMismatch`] when the buffer
    /// length is not `width * height`.
    pub fn from_u8(width: usize, height: usize, bytes: &[u8]) -> Result<Self, ImageError> {
        if bytes.len() != width * height {
            return Err(ImageError::BufferSizeMismatch {
                expected: width * height,
                actual: bytes.len(),
            });
        }
        Ok(GrayImage {
            width,
            height,
            pixels: bytes.iter().map(|&b| f32::from(b) / 255.0).collect(),
        })
    }

    /// Image width in pixels.
    #[inline]
    #[must_use]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Image height in pixels.
    #[inline]
    #[must_use]
    pub fn height(&self) -> usize {
        self.height
    }

    /// `true` when either dimension is zero.
    #[inline]
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.pixels.is_empty()
    }

    /// Reads the pixel at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics when the coordinate is out of bounds.
    #[inline]
    #[must_use]
    pub fn get(&self, x: usize, y: usize) -> f32 {
        assert!(
            x < self.width && y < self.height,
            "pixel ({x},{y}) out of bounds"
        );
        self.pixels[y * self.width + x]
    }

    /// Reads a pixel with edge clamping (out-of-range coordinates are
    /// clamped to the border) — the boundary policy of the HOG
    /// gradient operator.
    #[must_use]
    pub fn get_clamped(&self, x: isize, y: isize) -> f32 {
        if self.is_empty() {
            return 0.0;
        }
        let cx = x.clamp(0, self.width as isize - 1) as usize;
        let cy = y.clamp(0, self.height as isize - 1) as usize;
        self.pixels[cy * self.width + cx]
    }

    /// Writes the pixel at `(x, y)` (clamped to `[0, 1]`).
    ///
    /// # Panics
    ///
    /// Panics when the coordinate is out of bounds.
    #[inline]
    pub fn set(&mut self, x: usize, y: usize, value: f32) {
        assert!(
            x < self.width && y < self.height,
            "pixel ({x},{y}) out of bounds"
        );
        self.pixels[y * self.width + x] = value.clamp(0.0, 1.0);
    }

    /// Read-only view of the row-major pixel buffer.
    #[inline]
    #[must_use]
    pub fn pixels(&self) -> &[f32] {
        &self.pixels
    }

    /// Converts to an 8-bit buffer (`round(p * 255)`).
    #[must_use]
    pub fn to_u8(&self) -> Vec<u8> {
        self.pixels
            .iter()
            .map(|&p| (p * 255.0).round().clamp(0.0, 255.0) as u8)
            .collect()
    }

    /// Mean intensity of the image (`0.0` for an empty image).
    #[must_use]
    pub fn mean(&self) -> f32 {
        if self.pixels.is_empty() {
            return 0.0;
        }
        self.pixels.iter().sum::<f32>() / self.pixels.len() as f32
    }

    /// Minimum and maximum intensity, or `None` for an empty image.
    #[must_use]
    pub fn min_max(&self) -> Option<(f32, f32)> {
        if self.pixels.is_empty() {
            return None;
        }
        let mut lo = f32::INFINITY;
        let mut hi = f32::NEG_INFINITY;
        for &p in &self.pixels {
            lo = lo.min(p);
            hi = hi.max(p);
        }
        Some((lo, hi))
    }

    /// Linearly rescales intensities so the darkest pixel maps to 0
    /// and the brightest to 1; a constant image is left unchanged.
    #[must_use]
    pub fn normalized(&self) -> Self {
        match self.min_max() {
            Some((lo, hi)) if hi > lo => {
                let scale = 1.0 / (hi - lo);
                GrayImage {
                    width: self.width,
                    height: self.height,
                    pixels: self.pixels.iter().map(|&p| (p - lo) * scale).collect(),
                }
            }
            _ => self.clone(),
        }
    }

    /// Extracts the rectangle at `(x, y)` of size `w × h`.
    ///
    /// # Errors
    ///
    /// Returns [`ImageError::CropOutOfBounds`] when the rectangle does
    /// not fit inside the image.
    pub fn crop(&self, x: usize, y: usize, w: usize, h: usize) -> Result<Self, ImageError> {
        if x + w > self.width || y + h > self.height {
            return Err(ImageError::CropOutOfBounds);
        }
        let mut pixels = Vec::with_capacity(w * h);
        for row in y..y + h {
            let start = row * self.width + x;
            pixels.extend_from_slice(&self.pixels[start..start + w]);
        }
        Ok(GrayImage {
            width: w,
            height: h,
            pixels,
        })
    }

    /// Bilinear resize to `new_w × new_h`.
    ///
    /// # Errors
    ///
    /// Returns [`ImageError::EmptyImage`] when either target dimension
    /// is zero or the source is empty.
    pub fn resized(&self, new_w: usize, new_h: usize) -> Result<Self, ImageError> {
        if new_w == 0 || new_h == 0 || self.is_empty() {
            return Err(ImageError::EmptyImage);
        }
        let sx = self.width as f32 / new_w as f32;
        let sy = self.height as f32 / new_h as f32;
        Ok(GrayImage::from_fn(new_w, new_h, |x, y| {
            let fx = (x as f32 + 0.5) * sx - 0.5;
            let fy = (y as f32 + 0.5) * sy - 0.5;
            let x0 = fx.floor();
            let y0 = fy.floor();
            let tx = fx - x0;
            let ty = fy - y0;
            let p00 = self.get_clamped(x0 as isize, y0 as isize);
            let p10 = self.get_clamped(x0 as isize + 1, y0 as isize);
            let p01 = self.get_clamped(x0 as isize, y0 as isize + 1);
            let p11 = self.get_clamped(x0 as isize + 1, y0 as isize + 1);
            p00 * (1.0 - tx) * (1.0 - ty)
                + p10 * tx * (1.0 - ty)
                + p01 * (1.0 - tx) * ty
                + p11 * tx * ty
        }))
    }

    /// Flattens the image into a feature vector of `f64` values
    /// (row-major), the input format of the float baselines.
    #[must_use]
    pub fn to_feature_vec(&self) -> Vec<f64> {
        self.pixels.iter().map(|&p| f64::from(p)).collect()
    }

    /// Horizontal mirror (left↔right) — the canonical face-data
    /// augmentation, since faces are left-right symmetric.
    #[must_use]
    pub fn flipped_horizontal(&self) -> Self {
        GrayImage::from_fn(self.width, self.height, |x, y| {
            self.get(self.width - 1 - x, y)
        })
    }

    /// Vertical mirror (top↔bottom).
    #[must_use]
    pub fn flipped_vertical(&self) -> Self {
        GrayImage::from_fn(self.width, self.height, |x, y| {
            self.get(x, self.height - 1 - y)
        })
    }

    /// Brightness/contrast adjustment: `p ↦ gain·(p − 0.5) + 0.5 +
    /// bias`, clamped — photometric augmentation.
    #[must_use]
    pub fn adjusted(&self, gain: f32, bias: f32) -> Self {
        GrayImage::from_fn(self.width, self.height, |x, y| {
            gain * (self.get(x, y) - 0.5) + 0.5 + bias
        })
    }
}

impl fmt::Debug for GrayImage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "GrayImage({}x{}, mean={:.3})",
            self.width,
            self.height,
            self.mean()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filled_and_get_set() {
        let mut img = GrayImage::filled(3, 2, 0.5);
        assert_eq!(img.width(), 3);
        assert_eq!(img.height(), 2);
        assert_eq!(img.get(2, 1), 0.5);
        img.set(0, 0, 2.0); // clamps
        assert_eq!(img.get(0, 0), 1.0);
    }

    #[test]
    fn from_fn_row_major_order() {
        let img = GrayImage::from_fn(2, 2, |x, y| (x + 2 * y) as f32 / 3.0);
        assert_eq!(img.pixels(), &[0.0, 1.0 / 3.0, 2.0 / 3.0, 1.0]);
    }

    #[test]
    fn from_pixels_validates_length() {
        assert!(GrayImage::from_pixels(2, 2, vec![0.0; 3]).is_err());
        assert!(GrayImage::from_pixels(2, 2, vec![0.0; 4]).is_ok());
    }

    #[test]
    fn u8_roundtrip() {
        let img = GrayImage::from_u8(2, 1, &[0, 255]).unwrap();
        assert_eq!(img.get(0, 0), 0.0);
        assert_eq!(img.get(1, 0), 1.0);
        assert_eq!(img.to_u8(), vec![0, 255]);
    }

    #[test]
    fn clamped_access_extends_borders() {
        let img = GrayImage::from_fn(2, 2, |x, _| x as f32);
        assert_eq!(img.get_clamped(-5, 0), 0.0);
        assert_eq!(img.get_clamped(7, 1), 1.0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_out_of_bounds_panics() {
        let img = GrayImage::new(2, 2);
        let _ = img.get(2, 0);
    }

    #[test]
    fn mean_and_min_max() {
        let img = GrayImage::from_pixels(2, 1, vec![0.25, 0.75]).unwrap();
        assert_eq!(img.mean(), 0.5);
        assert_eq!(img.min_max(), Some((0.25, 0.75)));
        assert!(GrayImage::new(0, 0).min_max().is_none());
        assert_eq!(GrayImage::new(0, 0).mean(), 0.0);
    }

    #[test]
    fn normalized_stretches_range() {
        let img = GrayImage::from_pixels(2, 1, vec![0.4, 0.6]).unwrap();
        let n = img.normalized();
        assert_eq!(n.min_max(), Some((0.0, 1.0)));
        // Constant image unchanged.
        let c = GrayImage::filled(2, 2, 0.3).normalized();
        assert_eq!(c.get(0, 0), 0.3);
    }

    #[test]
    fn crop_extracts_subrect() {
        let img = GrayImage::from_fn(4, 4, |x, y| (x == 2 && y == 1) as i32 as f32);
        let c = img.crop(1, 1, 2, 2).unwrap();
        assert_eq!(c.get(1, 0), 1.0);
        assert_eq!(c.get(0, 0), 0.0);
        assert!(img.crop(3, 3, 2, 2).is_err());
    }

    #[test]
    fn resize_preserves_constant_images() {
        let img = GrayImage::filled(8, 8, 0.7);
        let r = img.resized(3, 5).unwrap();
        assert_eq!(r.width(), 3);
        assert_eq!(r.height(), 5);
        for &p in r.pixels() {
            assert!((p - 0.7).abs() < 1e-6);
        }
        assert!(img.resized(0, 5).is_err());
    }

    #[test]
    fn resize_identity_is_near_exact() {
        let img = GrayImage::from_fn(6, 6, |x, y| ((x * y) % 5) as f32 / 4.0);
        let r = img.resized(6, 6).unwrap();
        for (a, b) in img.pixels().iter().zip(r.pixels()) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn feature_vec_matches_pixels() {
        let img = GrayImage::from_pixels(2, 1, vec![0.5, 1.0]).unwrap();
        assert_eq!(img.to_feature_vec(), vec![0.5, 1.0]);
    }

    #[test]
    fn debug_output() {
        let img = GrayImage::filled(2, 2, 0.5);
        assert!(format!("{img:?}").contains("2x2"));
    }

    #[test]
    fn flips_mirror_correctly() {
        let img = GrayImage::from_fn(3, 2, |x, y| (x + 3 * y) as f32 / 5.0);
        let h = img.flipped_horizontal();
        assert_eq!(h.get(0, 0), img.get(2, 0));
        assert_eq!(h.get(2, 1), img.get(0, 1));
        // Double flip is identity.
        assert_eq!(h.flipped_horizontal(), img);
        let v = img.flipped_vertical();
        assert_eq!(v.get(0, 0), img.get(0, 1));
        assert_eq!(v.flipped_vertical(), img);
    }

    #[test]
    fn adjustment_scales_and_clamps() {
        let img = GrayImage::from_pixels(2, 1, vec![0.25, 0.75]).unwrap();
        let a = img.adjusted(2.0, 0.0);
        assert_eq!(a.get(0, 0), 0.0); // 2·(−0.25)+0.5 = 0.0
        assert_eq!(a.get(1, 0), 1.0);
        let b = img.adjusted(1.0, 0.5);
        assert_eq!(b.get(1, 0), 1.0); // clamped
    }

    #[test]
    fn error_display() {
        let e = ImageError::BufferSizeMismatch {
            expected: 4,
            actual: 3,
        };
        assert!(e.to_string().contains('4'));
        assert!(ImageError::CropOutOfBounds.to_string().contains("crop"));
    }
}
