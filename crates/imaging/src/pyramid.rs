//! Image pyramids for multi-scale detection.
//!
//! A fixed-size classification window detects faces of one apparent
//! size; scanning a geometric pyramid of downscaled copies finds
//! faces at every size. Coordinates found on a pyramid level map back
//! to the original image through the level's scale factor.

use crate::image::{GrayImage, ImageError};
use crate::window::Window;

/// One level of an [`ImagePyramid`].
#[derive(Debug, Clone)]
pub struct PyramidLevel {
    /// The downscaled image.
    pub image: GrayImage,
    /// Scale factor relative to the original (`1.0` = full size;
    /// level images have `original_dim × scale` pixels).
    pub scale: f64,
}

impl PyramidLevel {
    /// Maps a window found on this level back into original-image
    /// coordinates.
    #[must_use]
    pub fn to_original(&self, w: Window) -> Window {
        let inv = 1.0 / self.scale;
        Window {
            x: (w.x as f64 * inv).round() as usize,
            y: (w.y as f64 * inv).round() as usize,
            width: (w.width as f64 * inv).round() as usize,
            height: (w.height as f64 * inv).round() as usize,
        }
    }
}

/// A geometric image pyramid.
///
/// ```
/// use hdface_imaging::{GrayImage, ImagePyramid};
///
/// let img = GrayImage::new(64, 64);
/// let pyr = ImagePyramid::new(&img, 1.5, 16).unwrap();
/// // 64 → 42 → 28 → 18 (then 12 < 16 stops).
/// assert_eq!(pyr.levels().len(), 4);
/// assert_eq!(pyr.levels()[0].scale, 1.0);
/// ```
#[derive(Debug, Clone)]
pub struct ImagePyramid {
    levels: Vec<PyramidLevel>,
}

impl ImagePyramid {
    /// Builds a pyramid by repeatedly dividing dimensions by
    /// `step` (> 1) until either side would fall below `min_side`.
    ///
    /// # Errors
    ///
    /// Returns [`ImageError::EmptyImage`] when the source is empty or
    /// `step <= 1` / `min_side == 0` make the pyramid ill-defined.
    pub fn new(image: &GrayImage, step: f64, min_side: usize) -> Result<Self, ImageError> {
        if image.is_empty() || step <= 1.0 || !step.is_finite() || min_side == 0 {
            return Err(ImageError::EmptyImage);
        }
        let mut levels = vec![PyramidLevel {
            image: image.clone(),
            scale: 1.0,
        }];
        let mut scale = 1.0;
        loop {
            scale /= step;
            let w = (image.width() as f64 * scale).round() as usize;
            let h = (image.height() as f64 * scale).round() as usize;
            if w < min_side || h < min_side {
                break;
            }
            levels.push(PyramidLevel {
                image: image.resized(w, h)?,
                scale,
            });
        }
        Ok(ImagePyramid { levels })
    }

    /// The pyramid levels, largest (scale 1.0) first.
    #[must_use]
    pub fn levels(&self) -> &[PyramidLevel] {
        &self.levels
    }

    /// Iterator over the levels.
    pub fn iter(&self) -> std::slice::Iter<'_, PyramidLevel> {
        self.levels.iter()
    }
}

impl<'a> IntoIterator for &'a ImagePyramid {
    type Item = &'a PyramidLevel;
    type IntoIter = std::slice::Iter<'a, PyramidLevel>;

    fn into_iter(self) -> Self::IntoIter {
        self.levels.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_geometric_levels() {
        let img = GrayImage::new(100, 80);
        let pyr = ImagePyramid::new(&img, 2.0, 20).unwrap();
        let sizes: Vec<(usize, usize)> = pyr
            .iter()
            .map(|l| (l.image.width(), l.image.height()))
            .collect();
        assert_eq!(sizes, vec![(100, 80), (50, 40), (25, 20)]);
        assert!((pyr.levels()[1].scale - 0.5).abs() < 1e-12);
    }

    #[test]
    fn rejects_bad_parameters() {
        let img = GrayImage::new(10, 10);
        assert!(ImagePyramid::new(&img, 1.0, 4).is_err());
        assert!(ImagePyramid::new(&img, 0.5, 4).is_err());
        assert!(ImagePyramid::new(&img, 2.0, 0).is_err());
        assert!(ImagePyramid::new(&GrayImage::new(0, 0), 2.0, 4).is_err());
    }

    #[test]
    fn single_level_when_already_at_min() {
        let img = GrayImage::new(16, 16);
        let pyr = ImagePyramid::new(&img, 2.0, 16).unwrap();
        assert_eq!(pyr.levels().len(), 1);
    }

    #[test]
    fn windows_map_back_to_original_coordinates() {
        let img = GrayImage::new(64, 64);
        let pyr = ImagePyramid::new(&img, 2.0, 16).unwrap();
        let level = &pyr.levels()[1]; // scale 0.5
        let w = Window {
            x: 8,
            y: 4,
            width: 16,
            height: 16,
        };
        let orig = level.to_original(w);
        assert_eq!((orig.x, orig.y, orig.width, orig.height), (16, 8, 32, 32));
    }

    #[test]
    fn into_iterator_visits_all_levels() {
        let img = GrayImage::new(64, 64);
        let pyr = ImagePyramid::new(&img, 1.5, 16).unwrap();
        assert_eq!((&pyr).into_iter().count(), pyr.levels().len());
    }
}
