//! # hdface-imaging — grayscale image substrate
//!
//! Minimal image infrastructure used by the HDFace reproduction:
//! a float grayscale [`GrayImage`] (values in `[0, 1]`), drawing
//! primitives for the synthetic dataset generators, Gaussian blur and
//! noise, bilinear resizing, sliding-window iteration for the
//! detection experiments, and PGM/PPM serialization for the visual
//! artifacts of Fig. 6.
//!
//! ```
//! use hdface_imaging::GrayImage;
//!
//! let img = GrayImage::from_fn(4, 4, |x, y| if x == y { 1.0 } else { 0.0 });
//! assert_eq!(img.get(2, 2), 1.0);
//! assert_eq!(img.mean(), 0.25);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod draw;
mod filter;
mod image;
mod integral;
mod pnm;
mod pyramid;
mod window;

pub use draw::Canvas;
pub use filter::{box_blur, gaussian_noise};
pub use image::{GrayImage, ImageError};
pub use integral::IntegralImage;
pub use pnm::{read_pgm, write_pgm, write_ppm_overlay, Rgb};
pub use pyramid::{ImagePyramid, PyramidLevel};
pub use window::{SlidingWindows, Window};
