//! Drawing primitives used by the synthetic dataset generators.

use crate::image::GrayImage;

/// A mutable drawing surface over a [`GrayImage`].
///
/// All primitives clip silently at the image borders and clamp
/// intensities to `[0, 1]`, so generators can scatter shapes without
/// bounds bookkeeping.
///
/// ```
/// use hdface_imaging::{Canvas, GrayImage};
///
/// let mut canvas = Canvas::new(GrayImage::new(16, 16));
/// canvas.fill_disc(8.0, 8.0, 4.0, 1.0);
/// let img = canvas.into_image();
/// assert_eq!(img.get(8, 8), 1.0);
/// assert_eq!(img.get(0, 0), 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct Canvas {
    image: GrayImage,
}

impl Canvas {
    /// Wraps an image for drawing.
    #[must_use]
    pub fn new(image: GrayImage) -> Self {
        Canvas { image }
    }

    /// Finishes drawing and returns the image.
    #[must_use]
    pub fn into_image(self) -> GrayImage {
        self.image
    }

    /// Read-only access to the image being drawn.
    #[must_use]
    pub fn image(&self) -> &GrayImage {
        &self.image
    }

    fn width(&self) -> usize {
        self.image.width()
    }

    fn height(&self) -> usize {
        self.image.height()
    }

    fn put(&mut self, x: isize, y: isize, value: f32) {
        if x >= 0 && y >= 0 && (x as usize) < self.width() && (y as usize) < self.height() {
            self.image.set(x as usize, y as usize, value);
        }
    }

    /// Fills the whole surface with one intensity.
    pub fn fill(&mut self, value: f32) {
        for y in 0..self.height() {
            for x in 0..self.width() {
                self.image.set(x, y, value);
            }
        }
    }

    /// Fills an axis-aligned rectangle (clipped).
    pub fn fill_rect(&mut self, x: isize, y: isize, w: usize, h: usize, value: f32) {
        for dy in 0..h as isize {
            for dx in 0..w as isize {
                self.put(x + dx, y + dy, value);
            }
        }
    }

    /// Fills a disc of radius `r` centred at `(cx, cy)`.
    pub fn fill_disc(&mut self, cx: f32, cy: f32, r: f32, value: f32) {
        self.fill_ellipse(cx, cy, r, r, 0.0, value);
    }

    /// Fills a rotated ellipse with semi-axes `(rx, ry)` and rotation
    /// `angle` (radians, counter-clockwise).
    pub fn fill_ellipse(&mut self, cx: f32, cy: f32, rx: f32, ry: f32, angle: f32, value: f32) {
        if rx <= 0.0 || ry <= 0.0 {
            return;
        }
        let bound = rx.max(ry).ceil() as isize + 1;
        let (sin, cos) = angle.sin_cos();
        let x0 = cx.round() as isize;
        let y0 = cy.round() as isize;
        for dy in -bound..=bound {
            for dx in -bound..=bound {
                let px = (x0 + dx) as f32 - cx;
                let py = (y0 + dy) as f32 - cy;
                // Rotate the sample into the ellipse frame.
                let ex = px * cos + py * sin;
                let ey = -px * sin + py * cos;
                if (ex / rx).powi(2) + (ey / ry).powi(2) <= 1.0 {
                    self.put(x0 + dx, y0 + dy, value);
                }
            }
        }
    }

    /// Draws a straight line from `(x0, y0)` to `(x1, y1)` of the
    /// given thickness.
    pub fn line(&mut self, x0: f32, y0: f32, x1: f32, y1: f32, thickness: f32, value: f32) {
        let dx = x1 - x0;
        let dy = y1 - y0;
        let len = (dx * dx + dy * dy).sqrt();
        let steps = (len.ceil() as usize).max(1) * 2;
        let half = (thickness / 2.0).max(0.5);
        for i in 0..=steps {
            let t = i as f32 / steps as f32;
            let x = x0 + t * dx;
            let y = y0 + t * dy;
            self.fill_disc(x, y, half, value);
        }
    }

    /// Draws a quadratic Bézier arc (used for mouths / eyebrows) from
    /// `(x0, y0)` to `(x1, y1)` with control point `(cx, cy)`.
    #[allow(clippy::too_many_arguments)] // mirrors the Bézier parameter list
    pub fn quad_arc(
        &mut self,
        x0: f32,
        y0: f32,
        cx: f32,
        cy: f32,
        x1: f32,
        y1: f32,
        thickness: f32,
        value: f32,
    ) {
        let steps = 64;
        let half = (thickness / 2.0).max(0.5);
        for i in 0..=steps {
            let t = i as f32 / steps as f32;
            let mt = 1.0 - t;
            let x = mt * mt * x0 + 2.0 * mt * t * cx + t * t * x1;
            let y = mt * mt * y0 + 2.0 * mt * t * cy + t * t * y1;
            self.fill_disc(x, y, half, value);
        }
    }

    /// Fills the surface with a linear intensity gradient between
    /// `from` and `to` along direction `angle` (radians).
    pub fn linear_gradient(&mut self, from: f32, to: f32, angle: f32) {
        let (sin, cos) = angle.sin_cos();
        let w = self.width() as f32;
        let h = self.height() as f32;
        let span = (w * cos.abs() + h * sin.abs()).max(1.0);
        for y in 0..self.height() {
            for x in 0..self.width() {
                let proj = (x as f32 * cos + y as f32 * sin).rem_euclid(span) / span;
                self.image.set(x, y, from + (to - from) * proj);
            }
        }
    }

    /// Fills the surface with horizontal stripes of the given period.
    pub fn stripes(&mut self, period: usize, low: f32, high: f32) {
        let period = period.max(1);
        for y in 0..self.height() {
            let v = if (y / period).is_multiple_of(2) {
                low
            } else {
                high
            };
            for x in 0..self.width() {
                self.image.set(x, y, v);
            }
        }
    }
}

impl From<GrayImage> for Canvas {
    fn from(image: GrayImage) -> Self {
        Canvas::new(image)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blank(n: usize) -> Canvas {
        Canvas::new(GrayImage::new(n, n))
    }

    #[test]
    fn fill_rect_clips_at_borders() {
        let mut c = blank(4);
        c.fill_rect(-2, -2, 4, 4, 1.0);
        let img = c.into_image();
        assert_eq!(img.get(0, 0), 1.0);
        assert_eq!(img.get(1, 1), 1.0);
        assert_eq!(img.get(2, 2), 0.0);
    }

    #[test]
    fn disc_is_round() {
        let mut c = blank(21);
        c.fill_disc(10.0, 10.0, 5.0, 1.0);
        let img = c.into_image();
        assert_eq!(img.get(10, 10), 1.0);
        assert_eq!(img.get(10, 5), 1.0); // on the radius
        assert_eq!(img.get(14, 14), 0.0); // corner of bounding box
    }

    #[test]
    fn ellipse_rotation_changes_orientation() {
        let mut a = blank(31);
        a.fill_ellipse(15.0, 15.0, 12.0, 3.0, 0.0, 1.0);
        let ia = a.into_image();
        // Horizontal ellipse covers (27,15) but not (15,27).
        assert_eq!(ia.get(26, 15), 1.0);
        assert_eq!(ia.get(15, 26), 0.0);

        let mut b = blank(31);
        b.fill_ellipse(15.0, 15.0, 12.0, 3.0, std::f32::consts::FRAC_PI_2, 1.0);
        let ib = b.into_image();
        assert_eq!(ib.get(15, 26), 1.0);
        assert_eq!(ib.get(26, 15), 0.0);
    }

    #[test]
    fn degenerate_ellipse_draws_nothing() {
        let mut c = blank(8);
        c.fill_ellipse(4.0, 4.0, 0.0, 3.0, 0.0, 1.0);
        assert_eq!(c.image().mean(), 0.0);
    }

    #[test]
    fn line_connects_endpoints() {
        let mut c = blank(16);
        c.line(1.0, 1.0, 14.0, 14.0, 1.0, 1.0);
        let img = c.into_image();
        assert_eq!(img.get(1, 1), 1.0);
        assert_eq!(img.get(14, 14), 1.0);
        assert_eq!(img.get(7, 7), 1.0);
        assert_eq!(img.get(14, 1), 0.0);
    }

    #[test]
    fn quad_arc_bends_toward_control_point() {
        let mut c = blank(32);
        // Smile: endpoints level, control point below.
        c.quad_arc(6.0, 10.0, 16.0, 24.0, 26.0, 10.0, 1.5, 1.0);
        let img = c.into_image();
        assert_eq!(img.get(6, 10), 1.0);
        assert_eq!(img.get(26, 10), 1.0);
        // Midpoint of the curve sits at y = (10 + 2*24 + 10)/4 = 17.
        assert_eq!(img.get(16, 17), 1.0);
        assert_eq!(img.get(16, 10), 0.0);
    }

    #[test]
    fn gradient_is_monotone_horizontally() {
        let mut c = blank(16);
        c.linear_gradient(0.0, 1.0, 0.0);
        let img = c.into_image();
        assert!(img.get(15, 8) > img.get(8, 8));
        assert!(img.get(8, 8) > img.get(1, 8));
    }

    #[test]
    fn stripes_alternate() {
        let mut c = blank(8);
        c.stripes(2, 0.1, 0.9);
        let img = c.into_image();
        assert!((img.get(0, 0) - 0.1).abs() < 1e-6);
        assert!((img.get(0, 2) - 0.9).abs() < 1e-6);
        assert!((img.get(0, 4) - 0.1).abs() < 1e-6);
    }

    #[test]
    fn fill_covers_everything() {
        let mut c = blank(5);
        c.fill(0.6);
        assert!((c.image().mean() - 0.6).abs() < 1e-6);
    }

    #[test]
    fn canvas_from_image_conversion() {
        let img = GrayImage::filled(2, 2, 0.5);
        let c: Canvas = img.clone().into();
        assert_eq!(c.into_image(), img);
    }
}
