//! Sliding-window iteration for detection experiments (Fig. 6).

use crate::image::GrayImage;

/// One placement of a sliding window inside a larger image.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Window {
    /// Left edge (pixels).
    pub x: usize,
    /// Top edge (pixels).
    pub y: usize,
    /// Window width (pixels).
    pub width: usize,
    /// Window height (pixels).
    pub height: usize,
}

impl Window {
    /// `true` if the pixel `(px, py)` lies inside the window.
    #[must_use]
    pub fn contains(&self, px: usize, py: usize) -> bool {
        px >= self.x && px < self.x + self.width && py >= self.y && py < self.y + self.height
    }
}

/// Iterator over overlapping window placements, scanning left-to-right
/// then top-to-bottom with a fixed stride — the "window moves across
/// an image in an overlapping manner" protocol of Fig. 6a.
///
/// ```
/// use hdface_imaging::{GrayImage, SlidingWindows};
///
/// let img = GrayImage::new(10, 10);
/// let wins: Vec<_> = SlidingWindows::new(&img, 4, 4, 3).collect();
/// // x ∈ {0, 3, 6}, y ∈ {0, 3, 6}
/// assert_eq!(wins.len(), 9);
/// assert_eq!(wins[0].x, 0);
/// assert_eq!(wins[8].x, 6);
/// ```
#[derive(Debug, Clone)]
pub struct SlidingWindows<'a> {
    image: &'a GrayImage,
    win_w: usize,
    win_h: usize,
    stride: usize,
    next_x: usize,
    next_y: usize,
    done: bool,
}

impl<'a> SlidingWindows<'a> {
    /// Creates the iterator; `stride` is clamped to at least 1.
    ///
    /// Yields nothing when the window does not fit in the image.
    #[must_use]
    pub fn new(image: &'a GrayImage, win_w: usize, win_h: usize, stride: usize) -> Self {
        let done = win_w == 0 || win_h == 0 || win_w > image.width() || win_h > image.height();
        SlidingWindows {
            image,
            win_w,
            win_h,
            stride: stride.max(1),
            next_x: 0,
            next_y: 0,
            done,
        }
    }

    /// Extracts the pixels of a window as an owned image.
    ///
    /// # Panics
    ///
    /// Panics if the window was not produced by this iterator (out of
    /// bounds).
    #[must_use]
    pub fn extract(&self, w: Window) -> GrayImage {
        self.image
            .crop(w.x, w.y, w.width, w.height)
            .expect("window within bounds")
    }
}

impl Iterator for SlidingWindows<'_> {
    type Item = Window;

    fn next(&mut self) -> Option<Window> {
        if self.done {
            return None;
        }
        let w = Window {
            x: self.next_x,
            y: self.next_y,
            width: self.win_w,
            height: self.win_h,
        };
        // Advance in raster order.
        if self.next_x + self.stride + self.win_w <= self.image.width() {
            self.next_x += self.stride;
        } else {
            self.next_x = 0;
            if self.next_y + self.stride + self.win_h <= self.image.height() {
                self.next_y += self.stride;
            } else {
                self.done = true;
            }
        }
        Some(w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_expected_grid() {
        let img = GrayImage::new(8, 8);
        let wins: Vec<_> = SlidingWindows::new(&img, 4, 4, 2).collect();
        // x, y ∈ {0, 2, 4} → 9 windows.
        assert_eq!(wins.len(), 9);
        assert!(wins.contains(&Window {
            x: 4,
            y: 4,
            width: 4,
            height: 4
        }));
    }

    #[test]
    fn oversized_window_yields_nothing() {
        let img = GrayImage::new(4, 4);
        assert_eq!(SlidingWindows::new(&img, 5, 5, 1).count(), 0);
        assert_eq!(SlidingWindows::new(&img, 0, 4, 1).count(), 0);
    }

    #[test]
    fn exact_fit_single_window() {
        let img = GrayImage::new(4, 4);
        let wins: Vec<_> = SlidingWindows::new(&img, 4, 4, 1).collect();
        assert_eq!(wins.len(), 1);
        assert_eq!(wins[0].x, 0);
    }

    #[test]
    fn stride_zero_treated_as_one() {
        let img = GrayImage::new(5, 4);
        let count = SlidingWindows::new(&img, 4, 4, 0).count();
        assert_eq!(count, 2); // x ∈ {0, 1}
    }

    #[test]
    fn extract_pulls_correct_pixels() {
        let img = GrayImage::from_fn(6, 6, |x, y| ((x + y) % 2) as f32);
        let it = SlidingWindows::new(&img, 2, 2, 2);
        let w = Window {
            x: 2,
            y: 2,
            width: 2,
            height: 2,
        };
        let sub = it.extract(w);
        assert_eq!(sub.get(0, 0), img.get(2, 2));
        assert_eq!(sub.get(1, 1), img.get(3, 3));
    }

    #[test]
    fn contains_checks_bounds() {
        let w = Window {
            x: 2,
            y: 2,
            width: 3,
            height: 3,
        };
        assert!(w.contains(2, 2));
        assert!(w.contains(4, 4));
        assert!(!w.contains(5, 2));
        assert!(!w.contains(1, 2));
    }

    #[test]
    fn windows_stay_inside_image() {
        let img = GrayImage::new(13, 9);
        for w in SlidingWindows::new(&img, 4, 3, 3) {
            assert!(w.x + w.width <= 13);
            assert!(w.y + w.height <= 9);
        }
    }
}
