//! Image filters: blur and noise.

use rand::{Rng, RngExt};

use crate::image::GrayImage;

/// Box blur with an odd-sided square kernel (`radius` pixels each
/// side of the centre). Used to soften synthetic shapes so gradients
/// resemble natural images rather than step edges.
///
/// A radius of 0 returns the image unchanged.
#[must_use]
pub fn box_blur(image: &GrayImage, radius: usize) -> GrayImage {
    if radius == 0 || image.is_empty() {
        return image.clone();
    }
    let r = radius as isize;
    let norm = ((2 * r + 1) * (2 * r + 1)) as f32;
    GrayImage::from_fn(image.width(), image.height(), |x, y| {
        let mut sum = 0.0;
        for dy in -r..=r {
            for dx in -r..=r {
                sum += image.get_clamped(x as isize + dx, y as isize + dy);
            }
        }
        sum / norm
    })
}

/// Adds i.i.d. Gaussian noise of standard deviation `sigma` to every
/// pixel (clamped back into `[0, 1]`).
///
/// Uses the Box–Muller transform so only `rand`'s uniform generator is
/// required.
#[must_use]
pub fn gaussian_noise<R: Rng>(image: &GrayImage, sigma: f32, rng: &mut R) -> GrayImage {
    if sigma <= 0.0 {
        return image.clone();
    }
    GrayImage::from_fn(image.width(), image.height(), |x, y| {
        let u1: f32 = rng.random_range(f32::EPSILON..1.0);
        let u2: f32 = rng.random_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos();
        image.get(x, y) + sigma * z
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdface_hdc_test_rng::rng;

    /// Local helper module so the tests have a seeded RNG without
    /// depending on hdface-hdc.
    mod hdface_hdc_test_rng {
        use rand::{rngs::StdRng, SeedableRng};
        pub fn rng(seed: u64) -> StdRng {
            StdRng::seed_from_u64(seed)
        }
    }

    #[test]
    fn blur_preserves_constant_image() {
        let img = GrayImage::filled(8, 8, 0.4);
        let b = box_blur(&img, 2);
        for &p in b.pixels() {
            assert!((p - 0.4).abs() < 1e-6);
        }
    }

    #[test]
    fn blur_radius_zero_is_identity() {
        let img = GrayImage::from_fn(4, 4, |x, _| x as f32 / 3.0);
        assert_eq!(box_blur(&img, 0), img);
    }

    #[test]
    fn blur_smooths_step_edge() {
        let img = GrayImage::from_fn(10, 10, |x, _| if x < 5 { 0.0 } else { 1.0 });
        let b = box_blur(&img, 1);
        let edge = b.get(5, 5);
        assert!(edge > 0.0 && edge < 1.0, "edge pixel {edge}");
        // Mean intensity is conserved away from asymmetric borders.
        assert!((b.mean() - img.mean()).abs() < 0.05);
    }

    #[test]
    fn noise_changes_pixels_but_keeps_mean() {
        let img = GrayImage::filled(40, 40, 0.5);
        let mut r = rng(1);
        let n = gaussian_noise(&img, 0.1, &mut r);
        assert_ne!(n, img);
        assert!((n.mean() - 0.5).abs() < 0.02);
        // Empirical standard deviation close to requested sigma.
        let var: f32 = n
            .pixels()
            .iter()
            .map(|&p| (p - n.mean()).powi(2))
            .sum::<f32>()
            / n.pixels().len() as f32;
        assert!((var.sqrt() - 0.1).abs() < 0.02, "std {}", var.sqrt());
    }

    #[test]
    fn zero_sigma_noise_is_identity() {
        let img = GrayImage::filled(4, 4, 0.3);
        let mut r = rng(2);
        assert_eq!(gaussian_noise(&img, 0.0, &mut r), img);
    }
}
