//! Train → export → reload → deploy: the binary HDC model lifecycle.
//!
//! The deployed HDFace model is just `k` class hypervectors; this
//! example trains one, serializes it to the 20-lines-of-C-parseable
//! `HDM1` format, reloads it, and verifies the reloaded model
//! predicts identically — including after simulated transmission bit
//! errors, where the holographic representation keeps working.
//!
//! Run with:
//! ```sh
//! cargo run --release --example model_export
//! ```

use hdface::datasets::face2_spec;
use hdface::hdc::{HdcRng, SeedableRng};
use hdface::learn::{BinaryHdModel, TrainConfig};
use hdface::pipeline::{HdFeatureMode, HdPipeline};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    std::fs::create_dir_all("out")?;
    let dim = 4096;
    let data = face2_spec().at_size(32).scaled(120).generate(11);
    let (train, test) = data.split(0.75);

    // Train and export.
    let mut pipeline = HdPipeline::new(HdFeatureMode::encoded_classic(dim), 11);
    pipeline.train(&train, &TrainConfig::default())?;
    let mut rng = HdcRng::seed_from_u64(99);
    let model = pipeline.classifier().expect("trained").to_binary(&mut rng);
    let bytes = model.to_bytes();
    std::fs::write("out/face_model.hdm", &bytes)?;
    println!(
        "exported {} classes x {} bits = {} bytes -> out/face_model.hdm",
        model.num_classes(),
        model.dim(),
        bytes.len()
    );

    // Reload and verify bit-exact behavior.
    let reloaded = BinaryHdModel::from_bytes(&std::fs::read("out/face_model.hdm")?)?;
    let test_feats = pipeline.extract_dataset(&test)?;
    let acc_orig = model.accuracy(&test_feats)?;
    let acc_back = reloaded.accuracy(&test_feats)?;
    println!(
        "accuracy: exported {:.1}%  reloaded {:.1}%",
        acc_orig * 100.0,
        acc_back * 100.0
    );
    assert_eq!(acc_orig, acc_back, "reload must be bit-exact");

    // The payload survives a noisy link: flip 2% of the model bits.
    let noisy = reloaded.with_bit_errors(0.02, &mut rng);
    println!(
        "after 2% transmission bit errors: {:.1}% (holographic degradation)",
        noisy.accuracy(&test_feats)? * 100.0
    );
    Ok(())
}
