//! Seven-class emotion recognition (the EMOTION benchmark of
//! Table 1) with a per-class confusion matrix — paper Fig. 6b's
//! workload.
//!
//! Run with:
//! ```sh
//! cargo run --release --example emotion_recognition
//! ```

use hdface::datasets::{emotion_spec, Emotion};
use hdface::learn::TrainConfig;
use hdface::pipeline::{HdFeatureMode, HdPipeline};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dataset = emotion_spec().scaled(210).generate(3);
    let (train, test) = dataset.split(0.8);
    println!(
        "EMOTION (synthetic): {} train / {} test images of 48x48, 7 classes",
        train.len(),
        test.len()
    );

    // Expression recognition is the fine-grained task where the
    // encoded-classic configuration (float HOG + projection encoder +
    // HDC learning — the paper's configuration 1) is the strong one;
    // the fully stochastic extractor is noise-limited here (see
    // EXPERIMENTS.md).
    let mut pipeline = HdPipeline::new(HdFeatureMode::encoded_classic(4096), 1);
    let config = TrainConfig {
        epochs: 10,
        ..TrainConfig::default()
    };
    let report = pipeline.train(&train, &config)?;
    println!(
        "trained {} epochs ({} final-epoch errors / {} samples)",
        report.epochs, report.last_epoch_errors, report.samples
    );

    // Confusion matrix.
    let k = dataset.num_classes();
    let mut confusion = vec![vec![0usize; k]; k];
    for sample in &test {
        let predicted = pipeline.predict(&sample.image)?;
        confusion[sample.label][predicted] += 1;
    }

    println!("\nconfusion matrix (rows = truth, cols = prediction):");
    print!("{:>10}", "");
    for e in Emotion::ALL {
        print!("{:>9}", e.name());
    }
    println!();
    let mut correct = 0usize;
    let mut total = 0usize;
    for (row, e) in Emotion::ALL.iter().enumerate() {
        print!("{:>10}", e.name());
        for (col, &n) in confusion[row].iter().enumerate() {
            print!("{n:>9}");
            if row == col {
                correct += n;
            }
            total += n;
        }
        println!();
    }
    println!(
        "\noverall accuracy: {:.1}% ({correct}/{total})",
        100.0 * correct as f64 / total.max(1) as f64
    );
    Ok(())
}
