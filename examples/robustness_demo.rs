//! Robustness face-off: where do random bit errors hurt?
//!
//! Three fault sites at the same error rates, on the same face
//! detection task (with scrambled-face hard negatives so margins are
//! realistic):
//!
//! 1. the **HDC model + query hypervectors** (holographic memory),
//! 2. the **quantized DNN weight memory**,
//! 3. the **float HOG feature words** (original representation).
//!
//! This is the paper's §2 motivation and Table 2 in one table.
//!
//! Run with:
//! ```sh
//! cargo run --release --example robustness_demo
//! ```

use hdface::baselines::{QuantizedMlp, WeightPrecision};
use hdface::datasets::{face2_spec, render_scrambled_face, Dataset, LabeledImage};
use hdface::hdc::{BitVector, HdcRng, SeedableRng};
use hdface::hog::HogConfig;
use hdface::learn::TrainConfig;
use hdface::noise::BitErrorModel;
use hdface::pipeline::{DnnPipeline, HdFeatureMode, HdPipeline};

fn hard_dataset(seed: u64) -> Dataset {
    let base = face2_spec().at_size(32).scaled(160).generate(seed);
    let mut rng = HdcRng::seed_from_u64(seed ^ 0xface);
    let samples: Vec<LabeledImage> = base
        .iter()
        .enumerate()
        .map(|(i, s)| {
            if s.label == 0 && i % 4 < 2 {
                LabeledImage {
                    image: render_scrambled_face(32, &mut rng),
                    label: 0,
                }
            } else {
                s.clone()
            }
        })
        .collect();
    Dataset::new(
        "faces+hard-negatives",
        samples,
        vec!["no-face".into(), "face".into()],
    )
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dataset = hard_dataset(5);
    let (train, test) = dataset.split(0.7);
    let rates = [0.0, 0.01, 0.02, 0.04, 0.08, 0.14];
    let trials = 4u64;

    // --- HDC side: encoded features + binary model ------------------
    let mut hd = HdPipeline::new(HdFeatureMode::encoded_classic(4096), 2);
    hd.train(&train, &TrainConfig::default())?;
    let mut rng = HdcRng::seed_from_u64(77);
    let clf = hd.classifier().expect("trained").to_binary(&mut rng);
    let test_features = hd.extract_dataset(&test)?;

    // --- DNN side: 16-bit quantized model ----------------------------
    let mut dnn = DnnPipeline::new(HogConfig::paper(), (256, 256), 120, 2);
    dnn.train(&train)?;
    let dnn_test = dnn.extract_dataset(&test);
    let q16 = QuantizedMlp::from_mlp(dnn.mlp().expect("trained"), WeightPrecision::Bits16);

    println!("fault site vs bit-error rate (accuracy):");
    println!("rate | HDC model+queries | DNN 16-bit weights | float HOG features");
    println!("-----+-------------------+--------------------+-------------------");
    for (ri, &rate) in rates.iter().enumerate() {
        // (1) hypervector memory faults.
        let mut hd_acc = 0.0;
        for t in 0..trials {
            let mut mrng = HdcRng::seed_from_u64(1000 + ri as u64 * 31 + t);
            let noisy_model = clf.with_bit_errors(rate, &mut mrng);
            let mut channel = BitErrorModel::new(rate, 2000 + ri as u64 * 37 + t).unwrap();
            let noisy_queries = channel.corrupt_hypervector_set(&test_features);
            hd_acc += noisy_model.accuracy(&noisy_queries)?;
        }

        // (2) DNN weight faults.
        let mut dnn_acc = 0.0;
        for t in 0..trials {
            let mut wrng = HdcRng::seed_from_u64(3000 + ri as u64 * 41 + t);
            dnn_acc += q16.with_bit_errors(rate, &mut wrng).accuracy(&dnn_test)?;
        }

        // (3) float feature-word faults feeding the SAME HDC model.
        let mut float_acc = 0.0;
        for t in 0..trials {
            let mut channel = BitErrorModel::new(rate, 4000 + ri as u64 * 43 + t).unwrap();
            let mut correct = 0usize;
            for (s, (_, label)) in test.iter().zip(&test_features) {
                // Corrupt the float HOG words, re-encode, classify.
                let feats: Vec<f64> = hdface::hog::ClassicHog::new(HogConfig::paper())
                    .extract_vec(&s.image.normalized())
                    .iter()
                    .map(|v| v * 8.0)
                    .collect();
                let noisy = channel.corrupt_f32_features(&feats);
                // Reuse the pipeline's encoder by re-extracting via a
                // fresh feature path: encode with an equivalent
                // projection encoder seeded like the pipeline's.
                let enc = hdface::learn::ProjectionEncoder::new(noisy.len(), 4096, 2);
                let q: BitVector = hdface::learn::FeatureEncoder::encode(&enc, &noisy).unwrap();
                if clf.predict(&q)? == *label {
                    correct += 1;
                }
            }
            float_acc += correct as f64 / test.len() as f64;
        }

        println!(
            "{:3.0}% | {:16.1}% | {:17.1}% | {:17.1}%",
            rate * 100.0,
            hd_acc / trials as f64 * 100.0,
            dnn_acc / trials as f64 * 100.0,
            float_acc / trials as f64 * 100.0
        );
    }
    println!(
        "\nholographic memory degrades gracefully; positional float words do not\n\
         (one flipped exponent bit can move a feature by orders of magnitude)."
    );
    Ok(())
}
