//! Hardware feasibility report: what an HDFace accelerator instance
//! costs on the paper's Kintex-7 KC705, and how the two platforms
//! compare on the EMOTION training workload — a compact tour of the
//! `hdface-hwsim` models.
//!
//! Run with:
//! ```sh
//! cargo run --release --example hardware_report
//! ```

use hdface::hwsim::{
    AcceleratorConfig, CpuModel, DeviceBudget, FpgaModel, Phase, Platform, ResourceEstimate,
    Scenario,
};

fn main() {
    // --- FPGA resource feasibility ----------------------------------
    println!(
        "== accelerator resource estimates on the {} ==\n",
        DeviceBudget::kintex7_325t().name
    );
    let device = DeviceBudget::kintex7_325t();
    for (label, cfg) in [
        (
            "D=1k fully parallel",
            AcceleratorConfig {
                dim: 1024,
                lanes: 1024,
                classes: 2,
                bins: 8,
            },
        ),
        (
            "D=4k fully parallel (paper)",
            AcceleratorConfig::paper_default(),
        ),
        (
            "D=10k fully parallel",
            AcceleratorConfig {
                dim: 10_240,
                lanes: 10_240,
                classes: 2,
                bins: 8,
            },
        ),
        (
            "D=10k folded to 4k lanes",
            AcceleratorConfig {
                dim: 10_240,
                lanes: 4096,
                classes: 2,
                bins: 8,
            },
        ),
    ] {
        let est = ResourceEstimate::for_config(&cfg);
        let (lut, ff, bram, dsp) = est.utilization(&device);
        println!(
            "{label:30} {est}   util: {:.1}% LUT {:.1}% FF {:.1}% BRAM {:.1}% DSP  fits: {}",
            lut * 100.0,
            ff * 100.0,
            bram * 100.0,
            dsp * 100.0,
            est.fits(&device)
        );
    }
    println!("\nnote the DSP column: the HD datapath needs none, leaving all 840");
    println!("slices free — the structural reason for the paper's FPGA energy gap.\n");

    // --- Platform comparison on one workload -------------------------
    println!("== EMOTION training workload across platforms ==\n");
    let sc = Scenario::table1()[0];
    let cpu = CpuModel::cortex_a53();
    let fpga = FpgaModel::kintex7();
    for p in [&cpu as &dyn Platform, &fpga] {
        let hd = sc.measure(p, &sc.hdface_default(), Phase::Training);
        let dnn = sc.measure(p, &sc.dnn_default(), Phase::Training);
        println!(
            "{:26} HDFace {:8.1}s / {:7.1}J   DNN {:8.1}s / {:7.1}J   -> {:.1}x faster, {:.1}x less energy",
            p.name(),
            hd.seconds,
            hd.joules,
            dnn.seconds,
            dnn.joules,
            hd.speedup_vs(&dnn),
            hd.efficiency_vs(&dnn)
        );
    }
    println!("\npaper reference (Fig. 7a): training 6.1x/3.0x on CPU, 4.6x/12.1x on FPGA.");
}
