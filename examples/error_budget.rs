//! Predicting stochastic-pipeline error *analytically* — the paper's
//! §4.3 remark ("the HOG error rate can be estimated in each
//! dimensionality") in action: the [`ErrorBudget`] propagates a
//! (value, variance) pair through each primitive and its predictions
//! are compared against live measurements.
//!
//! Run with:
//! ```sh
//! cargo run --release --example error_budget
//! ```

use hdface::stochastic::{hog_magnitude_sigma, ErrorBudget, StochasticContext};

fn measure<F: FnMut(&mut StochasticContext) -> f64>(dim: usize, mut f: F) -> f64 {
    let mut ctx = StochasticContext::new(dim, 123);
    let trials = 300;
    let samples: Vec<f64> = (0..trials).map(|_| f(&mut ctx)).collect();
    let mean = samples.iter().sum::<f64>() / trials as f64;
    (samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / trials as f64).sqrt()
}

fn main() {
    println!("analytic error budget vs live measurement (sigma of the decoded value)\n");
    println!(
        "{:>6} | {:>22} | {:>22} | {:>22}",
        "D", "encode(0.4)", "0.6 x 0.5", "square(0.5)"
    );
    println!("{}", "-".repeat(82));
    for dim in [1024usize, 4096, 16384] {
        let p_enc = ErrorBudget::encode(0.4, dim).sigma();
        let m_enc = measure(dim, |ctx| {
            let v = ctx.encode(0.4).unwrap();
            ctx.decode(&v).unwrap()
        });
        let p_mul = ErrorBudget::encode(0.6, dim)
            .multiply(&ErrorBudget::encode(0.5, dim))
            .sigma();
        let m_mul = measure(dim, |ctx| {
            let a = ctx.encode(0.6).unwrap();
            let b = ctx.encode(0.5).unwrap();
            ctx.decode(&ctx.mul(&a, &b).unwrap()).unwrap()
        });
        let p_sq = ErrorBudget::encode(0.5, dim).square().sigma();
        let m_sq = measure(dim, |ctx| {
            let v = ctx.encode(0.5).unwrap();
            let s = ctx.square(&v).unwrap();
            ctx.decode(&s).unwrap()
        });
        println!(
            "{dim:>6} | pred {p_enc:.5} meas {m_enc:.5} | pred {p_mul:.5} meas {m_mul:.5} | pred {p_sq:.5} meas {m_sq:.5}"
        );
    }

    println!("\nHOG magnitude pipeline sigma (gradient 0.1, 6 sqrt iterations):");
    for dim in [1024usize, 4096, 10240] {
        println!(
            "  D = {dim:>6}: predicted sigma {:.5}",
            hog_magnitude_sigma(0.1, dim, 6)
        );
    }
    println!(
        "\nuse the budget to size D for a target feature accuracy before\n\
         running a single hypervector operation."
    );
}
