//! Sliding-window face detection over a synthetic scene — the Fig. 6a
//! protocol: the HOG window moves across the image in an overlapping
//! manner and each window is classified; detected windows are painted
//! blue in an output PPM, mispredicted clutter windows red.
//!
//! Run with:
//! ```sh
//! cargo run --release --example face_detection
//! ```
//! Output images land in `out/`.

use std::fs::File;
use std::io::BufWriter;

use hdface::datasets::{face2_spec, render_face, Emotion, FaceParams};
use hdface::hdc::{HdcRng, SeedableRng};
use hdface::imaging::{gaussian_noise, write_ppm_overlay, Canvas, GrayImage, Rgb, SlidingWindows};
use hdface::learn::TrainConfig;
use hdface::pipeline::{HdFeatureMode, HdPipeline};

const WINDOW: usize = 32;
const SCENE: usize = 96;

/// Builds a clutter scene with two faces embedded at known positions.
fn build_scene(rng: &mut HdcRng) -> (GrayImage, [(usize, usize); 2]) {
    let mut canvas = Canvas::new(GrayImage::filled(SCENE, SCENE, 0.35));
    canvas.linear_gradient(0.2, 0.5, 0.6);
    for i in 0..5 {
        let t = i as f32 * 19.0;
        canvas.line(
            t,
            0.0,
            SCENE as f32 - t,
            SCENE as f32,
            1.5,
            0.15 + 0.1 * (i as f32 % 3.0),
        );
    }
    let mut scene = canvas.into_image();

    // Paste two faces.
    let positions = [(8usize, 12usize), (56, 52)];
    for &(x, y) in &positions {
        let face = render_face(WINDOW, &FaceParams::centered(WINDOW, Emotion::Neutral), rng);
        for dy in 0..WINDOW {
            for dx in 0..WINDOW {
                scene.set(x + dx, y + dy, face.get(dx, dy));
            }
        }
    }
    (gaussian_noise(&scene, 0.02, rng), positions)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    std::fs::create_dir_all("out")?;
    let mut rng = HdcRng::seed_from_u64(99);

    // Train a face/no-face pipeline on windows of the detection size.
    let dataset = face2_spec().scaled(90).at_size(WINDOW).generate(11);
    let (scene, truth) = build_scene(&mut rng);

    for dim in [1024usize, 4096] {
        let mut pipeline = HdPipeline::new(HdFeatureMode::hyper_hog(dim), 5);
        pipeline.train(&dataset, &TrainConfig::default())?;

        // Slide the window with 50% overlap and classify every
        // placement.
        let mut marked = Vec::new();
        let mut detections = 0usize;
        let windows: Vec<_> = SlidingWindows::new(&scene, WINDOW, WINDOW, WINDOW / 2).collect();
        for w in &windows {
            let crop = scene.crop(w.x, w.y, w.width, w.height)?;
            if pipeline.predict(&crop)? == 1 {
                detections += 1;
                // Blue when overlapping a true face, red otherwise.
                let is_true_face = truth.iter().any(|&(fx, fy)| {
                    let dx = (w.x as isize - fx as isize).unsigned_abs();
                    let dy = (w.y as isize - fy as isize).unsigned_abs();
                    dx < WINDOW / 2 && dy < WINDOW / 2
                });
                let color = if is_true_face {
                    Rgb::DETECTION_BLUE
                } else {
                    Rgb::ERROR_RED
                };
                marked.push((*w, color));
            }
        }

        let path = format!("out/face_detection_d{dim}.ppm");
        write_ppm_overlay(&scene, &marked, BufWriter::new(File::create(&path)?))?;
        println!(
            "D = {dim:5}: {detections}/{} windows flagged as faces ({} false alarms) -> {path}",
            windows.len(),
            marked.iter().filter(|(_, c)| *c == Rgb::ERROR_RED).count(),
        );
    }
    println!("open the PPMs to compare detection maps at D = 1k vs 4k (paper Fig. 6a)");
    Ok(())
}
