//! Quickstart: the three layers of HDFace in one minute.
//!
//! 1. stochastic arithmetic on binary hypervectors,
//! 2. hyperdimensional HOG feature extraction,
//! 3. adaptive HDC classification of faces vs clutter.
//!
//! Run with:
//! ```sh
//! cargo run --release --example quickstart
//! ```

use hdface::datasets::face2_spec;
use hdface::learn::TrainConfig;
use hdface::pipeline::{HdFeatureMode, HdPipeline};
use hdface::stochastic::StochasticContext;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- 1. Stochastic arithmetic ------------------------------------
    println!("== stochastic arithmetic (D = 8192) ==");
    let mut ctx = StochasticContext::new(8192, 42);
    let a = ctx.encode(0.6)?;
    let b = ctx.encode(-0.3)?;
    println!("encode(0.6)          decodes to {:+.4}", ctx.decode(&a)?);
    println!("encode(-0.3)         decodes to {:+.4}", ctx.decode(&b)?);
    let avg = ctx.add_halved(&a, &b)?;
    println!("(0.6 + -0.3)/2       decodes to {:+.4}", ctx.decode(&avg)?);
    let prod = ctx.mul(&a, &b)?;
    println!("0.6 × -0.3           decodes to {:+.4}", ctx.decode(&prod)?);
    let quarter = ctx.encode(0.25)?;
    let root = ctx.sqrt(&quarter)?;
    println!("sqrt(0.25)           decodes to {:+.4}", ctx.decode(&root)?);
    let q = ctx.div(&b, &a)?;
    println!("-0.3 / 0.6           decodes to {:+.4}", ctx.decode(&q)?);

    // --- 2 & 3. End-to-end face detection ----------------------------
    println!("\n== face vs clutter with the HD pipeline ==");
    let dataset = face2_spec().scaled(80).at_size(32).generate(7);
    let (train, test) = dataset.split(0.75);
    println!(
        "dataset: {} train / {} test images of {}x{}",
        train.len(),
        test.len(),
        32,
        32
    );

    let mut pipeline = HdPipeline::new(HdFeatureMode::hyper_hog(4096), 7);
    let report = pipeline.train(&train, &TrainConfig::default())?;
    println!(
        "trained {} epochs over {} samples ({} final-epoch errors)",
        report.epochs, report.samples, report.last_epoch_errors
    );
    let accuracy = pipeline.evaluate(&test)?;
    println!("test accuracy: {:.1}%", accuracy * 100.0);

    Ok(())
}
