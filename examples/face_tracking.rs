//! Temporal face tracking — the surveillance use case of the paper's
//! introduction ("face tracking for surveillance"), built from two
//! HDC ingredients:
//!
//! 1. per-frame multi-scale detection with [`FaceDetector`];
//! 2. a hyperdimensional *track memory*: each track keeps a bundled
//!    appearance hypervector of its recent detections, and new
//!    detections are assigned to the most similar track (appearance)
//!    that is also spatially plausible (IoU gate) — re-identification
//!    through the same similarity machinery the classifier uses.
//!
//! Run with:
//! ```sh
//! cargo run --release --example face_tracking
//! ```

use hdface::datasets::{face2_spec, render_face, Emotion, FaceParams};
use hdface::detector::{iou, DetectorConfig, FaceDetector};
use hdface::hdc::{Accumulator, BitVector, HdcRng, SeedableRng};
use hdface::imaging::{gaussian_noise, Canvas, GrayImage, Window};
use hdface::learn::TrainConfig;
use hdface::pipeline::{HdFeatureMode, HdPipeline};

const WINDOW: usize = 32;
const SCENE: usize = 96;
const FRAMES: usize = 6;

struct Track {
    id: usize,
    appearance: Accumulator,
    last_window: Window,
    hits: usize,
}

fn scene_with_face_at(x: usize, y: usize, face: &GrayImage, rng: &mut HdcRng) -> GrayImage {
    let mut canvas = Canvas::new(GrayImage::filled(SCENE, SCENE, 0.35));
    canvas.linear_gradient(0.25, 0.5, 0.9);
    canvas.fill_rect(70, 64, 20, 24, 0.55);
    let mut scene = canvas.into_image();
    for dy in 0..WINDOW {
        for dx in 0..WINDOW {
            scene.set(x + dx, y + dy, face.get(dx, dy));
        }
    }
    gaussian_noise(&scene, 0.02, rng)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = HdcRng::seed_from_u64(33);
    let dim = 4096;

    // Train the per-window classifier once.
    let data = face2_spec().at_size(WINDOW).scaled(140).generate(8);
    let mut pipeline = HdPipeline::new(HdFeatureMode::encoded_classic(dim), 8);
    pipeline.train(&data, &TrainConfig::default())?;
    let mut detector = FaceDetector::new(
        pipeline,
        DetectorConfig {
            window: WINDOW,
            stride_fraction: 0.25,
            pyramid_step: 2.0,
            score_threshold: 0.05,
            iou_threshold: 0.3,
            ..DetectorConfig::default()
        },
    );

    // One subject moving diagonally across the frames.
    let face = render_face(
        WINDOW,
        &FaceParams::centered(WINDOW, Emotion::Neutral),
        &mut rng,
    );
    let mut tracks: Vec<Track> = Vec::new();
    let mut next_id = 0usize;

    println!("frame | detections | assignment");
    println!("------+------------+-----------");
    for frame in 0..FRAMES {
        let pos = 6 + frame * 10;
        let scene = scene_with_face_at(pos, pos, &face, &mut rng);
        let detections = detector.detect(&scene)?;

        for d in &detections {
            // Appearance feature of the detected crop.
            let crop = scene.crop(
                d.window.x.min(SCENE - WINDOW),
                d.window.y.min(SCENE - WINDOW),
                WINDOW,
                WINDOW,
            )?;
            let feature: BitVector = detector.pipeline_mut().extract(&crop)?;

            // Match by appearance similarity, gated by spatial
            // overlap; when a detection was missed and the subject
            // moved past the gate, fall back to pure appearance
            // re-identification — the holographic representation makes
            // that a single similarity test.
            let mut best: Option<(usize, f64)> = None;
            for (i, t) in tracks.iter().enumerate() {
                if iou(t.last_window, d.window) > 0.05 {
                    let sim = t.appearance.cosine(&feature)?;
                    if best.is_none_or(|(_, b)| sim > b) {
                        best = Some((i, sim));
                    }
                }
            }
            if best.is_none() {
                for (i, t) in tracks.iter().enumerate() {
                    let sim = t.appearance.cosine(&feature)?;
                    if sim > 0.5 && best.is_none_or(|(_, b)| sim > b) {
                        best = Some((i, sim));
                    }
                }
            }
            match best {
                Some((i, sim)) if sim > 0.1 => {
                    let t = &mut tracks[i];
                    t.appearance.add(&feature)?;
                    t.last_window = d.window;
                    t.hits += 1;
                    println!(
                        "{frame:5} | ({:3},{:3}) s{:+.2} | -> track {} (appearance sim {:+.3})",
                        d.window.x, d.window.y, d.score, t.id, sim
                    );
                }
                _ => {
                    let mut appearance = Accumulator::new(dim);
                    appearance.add(&feature)?;
                    println!(
                        "{frame:5} | ({:3},{:3}) s{:+.2} | new track {next_id}",
                        d.window.x, d.window.y, d.score
                    );
                    tracks.push(Track {
                        id: next_id,
                        appearance,
                        last_window: d.window,
                        hits: 1,
                    });
                    next_id += 1;
                }
            }
        }
    }

    println!("\ntracks:");
    for t in &tracks {
        println!(
            "  track {}: {} hits, last seen at ({}, {})",
            t.id, t.hits, t.last_window.x, t.last_window.y
        );
    }
    let longest = tracks.iter().map(|t| t.hits).max().unwrap_or(0);
    println!(
        "\nthe moving subject should form one dominant track ({longest}/{FRAMES} frames tracked)"
    );
    Ok(())
}
