//! A tour of the stochastic hyperdimensional ALU: every arithmetic
//! primitive of §4.2, with measured error against exact arithmetic at
//! several dimensionalities — including the documented failure mode
//! of naive self-multiplication.
//!
//! Run with:
//! ```sh
//! cargo run --release --example stochastic_calculator
//! ```

use hdface::stochastic::{expected_sigma, StochasticContext};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("stochastic hyperdimensional arithmetic — error vs dimensionality\n");
    println!(
        "{:>8} | {:>12} | {:>12} | {:>12} | {:>12} | {:>12}",
        "D", "construct", "average", "multiply", "sqrt", "divide"
    );
    println!("{}", "-".repeat(84));

    for dim in [512usize, 1024, 2048, 4096, 8192, 16384] {
        let mut ctx = StochasticContext::new(dim, 7);
        let trials = 40;
        let (mut e_con, mut e_avg, mut e_mul, mut e_sqrt, mut e_div) =
            (0.0f64, 0.0f64, 0.0f64, 0.0f64, 0.0f64);
        for t in 0..trials {
            let x = -0.9 + 1.8 * (t as f64 / (trials - 1) as f64);
            let y = 0.8 - 1.5 * (t as f64 / (trials - 1) as f64);
            let vx = ctx.encode(x)?;
            let vy = ctx.encode(y)?;
            e_con += (ctx.decode(&vx)? - x).abs();
            let avg = ctx.add_halved(&vx, &vy)?;
            e_avg += (ctx.decode(&avg)? - (x + y) / 2.0).abs();
            let mul = ctx.mul(&vx, &vy)?;
            e_mul += (ctx.decode(&mul)? - x * y).abs();
            let sq_in = ctx.encode(x.abs())?;
            let root = ctx.sqrt(&sq_in)?;
            e_sqrt += (ctx.decode(&root)? - x.abs().sqrt()).abs();
            // Divide the smaller magnitude by the larger one so the
            // quotient stays representable.
            let (num, den) = if x.abs() <= y.abs() { (x, y) } else { (y, x) };
            if den.abs() > 0.1 {
                let vn = ctx.encode(num)?;
                let vd = ctx.encode(den)?;
                let q = ctx.div(&vn, &vd)?;
                e_div += (ctx.decode(&q)? - num / den).abs();
            }
        }
        let n = trials as f64;
        println!(
            "{:>8} | {:>12.5} | {:>12.5} | {:>12.5} | {:>12.5} | {:>12.5}",
            dim,
            e_con / n,
            e_avg / n,
            e_mul / n,
            e_sqrt / n,
            e_div / n
        );
    }

    println!(
        "\nanalytic noise floor at D = 4096: sigma = {:.5}",
        expected_sigma(4096, 0.0)
    );

    println!("\n-- the independence pitfall ------------------------------");
    let mut ctx = StochasticContext::new(8192, 9);
    let v = ctx.encode(0.3)?;
    let naive = ctx.mul(&v, &v)?;
    let proper = ctx.square(&v)?;
    println!("0.3² exact                         = 0.09");
    println!(
        "V ⊗ V (same instance, WRONG)       = {:+.4}",
        ctx.decode(&naive)?
    );
    println!(
        "square() with resampling (correct) = {:+.4}",
        ctx.decode(&proper)?
    );
    Ok(())
}
