//! Multi-scale face detection: image pyramid + sliding windows +
//! non-maximum suppression over a trained HD pipeline — finding faces
//! of *different sizes* in one scene.
//!
//! Run with:
//! ```sh
//! cargo run --release --example multiscale_detection
//! ```
//! Writes `out/multiscale_detections.ppm`.

use std::fs::File;
use std::io::BufWriter;

use hdface::datasets::{face2_spec, render_face, Emotion, FaceParams};
use hdface::detector::{DetectorConfig, FaceDetector};
use hdface::hdc::{HdcRng, SeedableRng};
use hdface::imaging::{gaussian_noise, write_ppm_overlay, Canvas, GrayImage, Rgb};
use hdface::learn::TrainConfig;
use hdface::pipeline::{HdFeatureMode, HdPipeline};

const WINDOW: usize = 32;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    std::fs::create_dir_all("out")?;
    let mut rng = HdcRng::seed_from_u64(21);

    // Scene with two faces at DIFFERENT sizes: one window-sized, one
    // twice as large (only reachable through the pyramid).
    let mut canvas = Canvas::new(GrayImage::filled(128, 128, 0.35));
    canvas.linear_gradient(0.25, 0.5, 0.8);
    canvas.fill_rect(90, 8, 28, 20, 0.55);
    canvas.line(0.0, 100.0, 128.0, 70.0, 2.0, 0.2);
    let mut scene = canvas.into_image();

    let small = render_face(
        WINDOW,
        &FaceParams::centered(WINDOW, Emotion::Happy),
        &mut rng,
    );
    for y in 0..WINDOW {
        for x in 0..WINDOW {
            scene.set(8 + x, 12 + y, small.get(x, y));
        }
    }
    let big = render_face(64, &FaceParams::centered(64, Emotion::Neutral), &mut rng);
    for y in 0..64 {
        for x in 0..64 {
            scene.set(56 + x, 56 + y, big.get(x, y));
        }
    }
    let scene = gaussian_noise(&scene, 0.02, &mut rng);

    // Train a binary pipeline at the window size (the encoded-classic
    // configuration is the fast, strong one for detection).
    let data = face2_spec().at_size(WINDOW).scaled(160).generate(4);
    let mut pipeline = HdPipeline::new(HdFeatureMode::encoded_classic(4096), 4);
    pipeline.train(&data, &TrainConfig::default())?;

    let detector = FaceDetector::new(
        pipeline,
        DetectorConfig {
            window: WINDOW,
            stride_fraction: 0.25,
            pyramid_step: 1.5,
            score_threshold: 0.05,
            iou_threshold: 0.3,
            ..DetectorConfig::default()
        },
    );

    let detections = detector.detect(&scene)?;
    println!(
        "{} detections after non-maximum suppression:",
        detections.len()
    );
    let mut marked = Vec::new();
    for d in &detections {
        println!(
            "  at ({:3}, {:3}) size {:2}  scale {:.2}  score {:+.3}",
            d.window.x, d.window.y, d.window.width, d.scale, d.score
        );
        marked.push((d.window, Rgb::DETECTION_BLUE));
    }
    let path = "out/multiscale_detections.ppm";
    write_ppm_overlay(&scene, &marked, BufWriter::new(File::create(path)?))?;
    println!("overlay written to {path}");
    println!("(true faces: 32px at (8,12) and 64px at (56,56))");
    Ok(())
}
